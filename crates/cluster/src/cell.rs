//! Per-node runtime state shared by the virtual-time and threaded modes.
//!
//! A [`NodeCell`] wraps one sans-IO [`Node`] with everything the live
//! runtime owns per replica: its protocol and link RNG substreams, its
//! local timer heap, and the inbox of *encoded* [`Envelope`]s. The tick
//! routine mirrors `rumor_net::SyncEngine`'s round semantics — status
//! change, round start, due timers, delivery — with one addition: every
//! message crosses the node boundary as a `rumor-wire` frame, encoded at
//! send and strictly decoded at delivery.

use crate::byzantine::{ByzantineState, TamperedFrame};
use bytes::Bytes;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor_net::{Effect, EffectSink, LinkFilter, Node};
use rumor_obs::{EventKind, MemTracer, MsgKind, TraceEvent, Tracer};
use rumor_types::{PeerId, Round};
use rumor_wire::{
    decode_frame, decode_frame_v2, encode_frame, BatchEncoder, Decode, Encode, WireError,
    WireVersion,
};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Extra in-flight delivery delay: each frame draws a uniform extra
/// `0..=max_extra_rounds` rounds (once, at its first eligible tick) from
/// the receiver's link stream. Zero (the default) reproduces the
/// synchronous one-round delay exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DelaySpec {
    /// Maximum extra rounds a frame may spend in flight.
    pub max_extra_rounds: u32,
}

/// An encoded frame in flight between two cluster nodes.
#[derive(Debug, Clone)]
pub(crate) struct Envelope {
    /// Sending replica.
    pub from: PeerId,
    /// First round at which the frame may be delivered (sender's round
    /// plus one network delay).
    pub deliver_from: u32,
    /// Whether the extra-delay draw already happened for this frame.
    pub delay_resolved: bool,
    /// The encoded `rumor-wire` frame.
    pub frame: Bytes,
}

/// A pending timer, ordered `(fire, seq)` so ties pop in arming order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimerEntry {
    fire: u32,
    seq: u64,
    tag: u64,
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inverted: earliest (fire, seq) pops first.
        (other.fire, other.seq).cmp(&(self.fire, self.seq))
    }
}

/// Per-cell traffic accounting. `sent` counts frames handed to the
/// transport (the paper's overhead metric counts sends to offline peers
/// too); the consumed side splits into delivered / lost-offline /
/// lost-fault / decode-error / version-mismatch so `sent == consumed`
/// across the cluster is the quiescence check. Under wire v1 every
/// frame carries exactly one message and the `messages_*` counters move
/// in lockstep with the frame counters; under wire v2 one batch frame
/// carries a whole per-peer round group, so the two diverge and the
/// ratio is the batching win.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct CellStats {
    pub sent: u64,
    pub bytes_sent: u64,
    /// Logical protocol messages inside `sent` frames (a replayed frame
    /// is opaque and counts as one).
    pub messages_sent: u64,
    pub delivered: u64,
    pub bytes_delivered: u64,
    /// Logical messages handed to the node out of `delivered` frames.
    pub messages_delivered: u64,
    pub lost_offline: u64,
    pub lost_fault: u64,
    pub decode_errors: u64,
    /// Frames rejected for carrying a codec version this cell does not
    /// speak (a v2 batch arriving at a v1 cell, a forged version byte) —
    /// distinct from `decode_errors` so coexistence drops are visible.
    pub version_mismatches: u64,
    /// Sends this cell's Byzantine layer tampered with (lied, replayed
    /// or corrupted). Always 0 on an honest cell.
    pub tampered: u64,
}

impl CellStats {
    /// Frames this cell has consumed (delivered or dropped for any
    /// reason) — the receiving side of the in-flight balance.
    pub fn consumed(&self) -> u64 {
        self.delivered
            + self.lost_offline
            + self.lost_fault
            + self.decode_errors
            + self.version_mismatches
    }

    /// Adds `other`'s counters into `self` — shard-level aggregation in
    /// the sharded runtime, where one report sums a whole shard's cells.
    pub fn absorb(&mut self, other: &CellStats) {
        self.sent += other.sent;
        self.bytes_sent += other.bytes_sent;
        self.messages_sent += other.messages_sent;
        self.delivered += other.delivered;
        self.bytes_delivered += other.bytes_delivered;
        self.messages_delivered += other.messages_delivered;
        self.lost_offline += other.lost_offline;
        self.lost_fault += other.lost_fault;
        self.decode_errors += other.decode_errors;
        self.version_mismatches += other.version_mismatches;
        self.tampered += other.tampered;
    }
}

/// One replica mounted in the live runtime.
pub(crate) struct NodeCell<N: Node> {
    pub id: PeerId,
    pub node: N,
    rng: ChaCha8Rng,
    link_rng: ChaCha8Rng,
    prev_online: bool,
    primed: bool,
    timers: BinaryHeap<TimerEntry>,
    timer_seq: u64,
    pub inbox: VecDeque<Envelope>,
    sink: EffectSink<N::Msg>,
    pub stats: CellStats,
    delay: DelaySpec,
    byz: Option<ByzantineState<N::Msg>>,
    wire: WireVersion,
    /// Wire-v2 send staging: `(target, message)` pairs accumulated over
    /// one tick, flushed per peer as (batch) frames at the tick's end.
    outbox: Vec<(PeerId, N::Msg)>,
    decode_scratch: Vec<N::Msg>,
    retained_scratch: Vec<Envelope>,
    due_scratch: Vec<(u32, u64)>,
    /// Per-cell trace capture; `None` (the default) costs one untaken
    /// branch per event site. Events never leave the cell until the
    /// run finishes, so tracing adds no cross-thread traffic.
    tracer: Option<MemTracer>,
    /// Message classifier stamped on send/deliver trace events.
    kinder: Option<fn(&N::Msg) -> MsgKind>,
}

impl<N: Node> NodeCell<N>
where
    N::Msg: Encode + Decode,
{
    /// Wraps `node` with fresh RNG substreams and empty queues.
    pub fn new(id: PeerId, node: N, node_seed: u64, link_seed: u64, delay: DelaySpec) -> Self {
        Self {
            id,
            node,
            rng: ChaCha8Rng::seed_from_u64(node_seed),
            link_rng: ChaCha8Rng::seed_from_u64(link_seed),
            prev_online: false,
            primed: false,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            inbox: VecDeque::new(),
            sink: EffectSink::new(),
            stats: CellStats::default(),
            delay,
            byz: None,
            wire: WireVersion::V1,
            outbox: Vec::new(),
            decode_scratch: Vec::new(),
            retained_scratch: Vec::new(),
            due_scratch: Vec::new(),
            tracer: None,
            kinder: None,
        }
    }

    /// Enables trace capture on this cell with `kinder` classifying
    /// message kinds (None stamps [`MsgKind::Other`]). Capture consumes
    /// no randomness: a traced run is bit-identical to an untraced one.
    pub fn enable_trace(&mut self, kinder: Option<fn(&N::Msg) -> MsgKind>) {
        self.tracer = Some(MemTracer::new());
        self.kinder = kinder;
    }

    /// Drains the cell's captured events (empty when tracing is off).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.tracer.as_mut().map_or_else(Vec::new, MemTracer::take)
    }

    /// Mounts adversarial behaviour on this cell: from now on every
    /// outgoing message passes through the Byzantine tamper layer.
    pub fn set_byzantine(&mut self, state: ByzantineState<N::Msg>) {
        self.byz = Some(state);
    }

    /// Selects the wire codec version this cell speaks. V1 — the
    /// default — frames one message per frame; V2 coalesces each tick's
    /// per-peer traffic into batch frames and decodes both versions.
    pub fn set_wire(&mut self, wire: WireVersion) {
        self.wire = wire;
    }

    /// Frames queued (not yet delivered or dropped).
    pub fn pending_frames(&self) -> usize {
        self.inbox.len()
    }

    /// Timers armed and not yet fired or dropped.
    pub fn pending_timers(&self) -> usize {
        self.timers.len()
    }

    /// Encodes and dispatches the sink's effects. Sends become envelopes
    /// deliverable from `deliver_from`; a timer of delay `d` requested at
    /// round `now` fires at `now + d`, floored at `timer_floor` (the next
    /// scan that could observe it, preserving the engine's barrier
    /// semantics).
    fn drain_effects(
        &mut self,
        now: u32,
        deliver_from: u32,
        timer_floor: u32,
        dispatch: &mut dyn FnMut(PeerId, Envelope),
    ) {
        for effect in self.sink.drain() {
            match effect {
                Effect::Send { to, msg } => {
                    if self.wire == WireVersion::V2 {
                        // Staged; the end-of-tick flush groups per peer
                        // and emits one (batch) frame per target.
                        self.outbox.push((to, msg));
                        continue;
                    }
                    let kind = match (&self.tracer, self.kinder) {
                        (Some(_), Some(k)) => k(&msg),
                        _ => MsgKind::Other,
                    };
                    let mut tampered = false;
                    let (frame, replay) = match self.byz.as_mut() {
                        None => (encode_frame(&msg), None),
                        Some(byz) => {
                            let decision = byz.tamper(msg, encode_frame);
                            if decision.tampered {
                                self.stats.tampered += 1;
                                tampered = true;
                            }
                            let frame = match decision.outgoing {
                                TamperedFrame::Message(m) => encode_frame(&m),
                                TamperedFrame::Raw(raw) => raw,
                            };
                            (frame, decision.replay)
                        }
                    };
                    self.stats.sent += 1;
                    self.stats.messages_sent += 1;
                    self.stats.bytes_sent += frame.len() as u64;
                    if let Some(t) = self.tracer.as_mut() {
                        if tampered {
                            t.record(now, self.id.as_u32(), EventKind::Tamper);
                        }
                        t.record(
                            now,
                            self.id.as_u32(),
                            EventKind::Send {
                                to: to.as_u32(),
                                kind,
                                bytes: frame.len() as u32,
                            },
                        );
                    }
                    dispatch(
                        to,
                        Envelope {
                            from: self.id,
                            deliver_from,
                            delay_resolved: false,
                            frame,
                        },
                    );
                    if let Some(stale) = replay {
                        self.stats.sent += 1;
                        self.stats.messages_sent += 1;
                        self.stats.bytes_sent += stale.len() as u64;
                        if let Some(t) = self.tracer.as_mut() {
                            // A replayed frame's content is opaque.
                            t.record(
                                now,
                                self.id.as_u32(),
                                EventKind::Send {
                                    to: to.as_u32(),
                                    kind: MsgKind::Other,
                                    bytes: stale.len() as u32,
                                },
                            );
                        }
                        dispatch(
                            to,
                            Envelope {
                                from: self.id,
                                deliver_from,
                                delay_resolved: false,
                                frame: stale,
                            },
                        );
                    }
                }
                Effect::Timer { delay, tag } => {
                    let fire = now.saturating_add(delay as u32).max(timer_floor);
                    self.timer_seq += 1;
                    self.timers.push(TimerEntry {
                        fire,
                        seq: self.timer_seq,
                        tag,
                    });
                }
            }
        }
    }

    /// Flushes the wire-v2 outbox: staged sends are grouped per target
    /// peer (first-send order; a linear scan, not a hash, so iteration
    /// stays deterministic), each group leaves as one frame — a plain
    /// frame for a lone message, a batch frame for two or more — and
    /// the Byzantine layer tampers per *frame*, not per message. No-op
    /// under wire v1, whose sends never stage.
    fn flush_outbox(
        &mut self,
        now: u32,
        deliver_from: u32,
        dispatch: &mut dyn FnMut(PeerId, Envelope),
    ) {
        if self.outbox.is_empty() {
            return;
        }
        let staged = std::mem::take(&mut self.outbox);
        let mut groups: Vec<(PeerId, Vec<N::Msg>)> = Vec::new();
        for (to, msg) in staged {
            match groups.iter_mut().find(|(peer, _)| *peer == to) {
                Some((_, group)) => group.push(msg),
                None => groups.push((to, vec![msg])),
            }
        }
        for (to, mut msgs) in groups {
            let count = msgs.len() as u64;
            // A lone message keeps its kind; a batch frame is stamped
            // `Other` (it carries many kinds at once).
            let kind = match (&self.tracer, self.kinder, &msgs[..]) {
                (Some(_), Some(k), [single]) => k(single),
                _ => MsgKind::Other,
            };
            let mut tampered = false;
            let (frame, replay) = match self.byz.as_mut() {
                None => (encode_group(&msgs), None),
                Some(byz) => {
                    let decision = byz.tamper_group(&mut msgs, encode_group);
                    if decision.tampered {
                        self.stats.tampered += 1;
                        tampered = true;
                    }
                    (decision.frame, decision.replay)
                }
            };
            self.stats.sent += 1;
            self.stats.messages_sent += count;
            self.stats.bytes_sent += frame.len() as u64;
            if let Some(t) = self.tracer.as_mut() {
                if tampered {
                    t.record(now, self.id.as_u32(), EventKind::Tamper);
                }
                t.record(
                    now,
                    self.id.as_u32(),
                    EventKind::Send {
                        to: to.as_u32(),
                        kind,
                        bytes: frame.len() as u32,
                    },
                );
            }
            dispatch(
                to,
                Envelope {
                    from: self.id,
                    deliver_from,
                    delay_resolved: false,
                    frame,
                },
            );
            if let Some(stale) = replay {
                // A replayed frame's content is opaque here: one frame,
                // counted as one logical message.
                self.stats.sent += 1;
                self.stats.messages_sent += 1;
                self.stats.bytes_sent += stale.len() as u64;
                if let Some(t) = self.tracer.as_mut() {
                    t.record(
                        now,
                        self.id.as_u32(),
                        EventKind::Send {
                            to: to.as_u32(),
                            kind: MsgKind::Other,
                            bytes: stale.len() as u32,
                        },
                    );
                }
                dispatch(
                    to,
                    Envelope {
                        from: self.id,
                        deliver_from,
                        delay_resolved: false,
                        frame: stale,
                    },
                );
            }
        }
    }

    /// Runs `f` against the node outside a tick (update initiation): its
    /// sends become deliverable at the *next* tick (`round`), mirroring
    /// `SyncEngine::inject` before a step.
    pub fn initiate<T>(
        &mut self,
        round: u32,
        f: impl FnOnce(&mut N, &mut ChaCha8Rng, &mut EffectSink<N::Msg>) -> T,
        dispatch: &mut dyn FnMut(PeerId, Envelope),
    ) -> T {
        let out = f(&mut self.node, &mut self.rng, &mut self.sink);
        self.drain_effects(round, round, round, dispatch);
        self.flush_outbox(round, round, dispatch);
        out
    }

    /// Executes one tick of round `round` with availability `online`:
    /// status change, round start, due timers, then delivery of eligible
    /// inbox frames (decode → link filter → `on_message`). Sends produced
    /// during the tick are deliverable from `round + 1`.
    ///
    /// A crashed node simply misses its ticks; frames that came
    /// deliverable during the gap (`deliver_from < round`) are dropped as
    /// lost-to-offline on the next tick, and timers that came due during
    /// the gap are dropped — exactly the engine's offline semantics.
    pub fn tick(
        &mut self,
        round: u32,
        online: bool,
        filter: &dyn LinkFilter,
        dispatch: &mut dyn FnMut(PeerId, Envelope),
    ) {
        let r = Round::new(round);
        // 1. Availability transition (the first observation is not one).
        if self.primed {
            if self.prev_online != online {
                self.prev_online = online;
                self.node
                    .on_status_change(online, r, &mut self.rng, &mut self.sink);
                self.drain_effects(round, round + 1, round + 1, dispatch);
            }
        } else {
            self.primed = true;
            self.prev_online = online;
        }

        // 2. Round start while online.
        if online {
            self.node.on_round_start(r, &mut self.rng, &mut self.sink);
            self.drain_effects(round, round + 1, round + 1, dispatch);
        }

        // 3. Due timers, in arming order. Timers due exactly this round
        //    fire if the node is online; earlier fire rounds can only
        //    mean the node was crashed when they came due — dropped, as
        //    the engine drops offline peers' due timers.
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        while let Some(head) = self.timers.peek() {
            if head.fire > round {
                break;
            }
            let entry = self.timers.pop().expect("peeked");
            due.push((entry.fire, entry.tag));
        }
        for &(fire, tag) in &due {
            if online && fire == round {
                if let Some(t) = self.tracer.as_mut() {
                    t.record(round, self.id.as_u32(), EventKind::TimerFire { tag });
                }
                self.node.on_timer(tag, r, &mut self.rng, &mut self.sink);
                self.drain_effects(round, round + 1, round + 1, dispatch);
            }
        }
        self.due_scratch = due;

        // 4. Delivery of eligible frames, in arrival order.
        let mut retained = std::mem::take(&mut self.retained_scratch);
        retained.clear();
        while let Some(mut env) = self.inbox.pop_front() {
            if env.deliver_from > round {
                retained.push(env);
                continue;
            }
            if env.deliver_from < round {
                // Stale: became deliverable during a crash gap. Checked
                // before the delay draw so a gap frame is never
                // resurrected into a later round by the delay model.
                self.stats.lost_offline += 1;
                if let Some(t) = self.tracer.as_mut() {
                    t.record(
                        round,
                        self.id.as_u32(),
                        EventKind::DropOffline {
                            from: env.from.as_u32(),
                        },
                    );
                }
                continue;
            }
            if !env.delay_resolved {
                env.delay_resolved = true;
                if self.delay.max_extra_rounds > 0 {
                    let extra = self.link_rng.gen_range(0..self.delay.max_extra_rounds + 1);
                    if extra > 0 {
                        env.deliver_from = round + extra;
                        retained.push(env);
                        continue;
                    }
                }
            }
            if !online {
                self.stats.lost_offline += 1;
                if let Some(t) = self.tracer.as_mut() {
                    t.record(
                        round,
                        self.id.as_u32(),
                        EventKind::DropOffline {
                            from: env.from.as_u32(),
                        },
                    );
                }
                continue;
            }
            match self.wire {
                WireVersion::V1 => {
                    if !filter.allows(env.from, self.id, r, &mut self.link_rng) {
                        self.stats.lost_fault += 1;
                        if let Some(t) = self.tracer.as_mut() {
                            t.record(
                                round,
                                self.id.as_u32(),
                                EventKind::DropLoss {
                                    from: env.from.as_u32(),
                                },
                            );
                        }
                        continue;
                    }
                    match decode_frame::<N::Msg>(&env.frame) {
                        Err(WireError::BadVersion { .. }) => self.stats.version_mismatches += 1,
                        Err(_) => self.stats.decode_errors += 1,
                        Ok(msg) => {
                            self.stats.delivered += 1;
                            self.stats.messages_delivered += 1;
                            self.stats.bytes_delivered += env.frame.len() as u64;
                            if let Some(byz) = self.byz.as_mut() {
                                if byz.replays() {
                                    byz.remember(&env.frame);
                                }
                            }
                            if self.tracer.is_some() {
                                let kind = self.kinder.map_or(MsgKind::Other, |k| k(&msg));
                                if let Some(t) = self.tracer.as_mut() {
                                    t.record(
                                        round,
                                        self.id.as_u32(),
                                        EventKind::Deliver {
                                            from: env.from.as_u32(),
                                            kind,
                                        },
                                    );
                                }
                            }
                            self.node
                                .on_message(env.from, msg, r, &mut self.rng, &mut self.sink);
                            self.drain_effects(round, round + 1, round + 1, dispatch);
                        }
                    }
                }
                WireVersion::V2 => {
                    // Decode the whole frame first — a corrupted batch
                    // drops whole and counts once — then draw the link
                    // filter per logical message in send order,
                    // mirroring v1's one draw per single-message frame
                    // so zero-delay link-RNG trajectories stay aligned.
                    let mut msgs = std::mem::take(&mut self.decode_scratch);
                    msgs.clear();
                    match decode_frame_v2::<N::Msg>(&env.frame, &mut msgs) {
                        Err(WireError::BadVersion { .. }) => self.stats.version_mismatches += 1,
                        Err(_) => self.stats.decode_errors += 1,
                        Ok(()) => {
                            if let Some(byz) = self.byz.as_mut() {
                                if byz.replays() {
                                    byz.remember(&env.frame);
                                }
                            }
                            let mut survivors = 0u64;
                            for msg in msgs.drain(..) {
                                if !filter.allows(env.from, self.id, r, &mut self.link_rng) {
                                    continue;
                                }
                                survivors += 1;
                                if self.tracer.is_some() {
                                    let kind = self.kinder.map_or(MsgKind::Other, |k| k(&msg));
                                    if let Some(t) = self.tracer.as_mut() {
                                        t.record(
                                            round,
                                            self.id.as_u32(),
                                            EventKind::Deliver {
                                                from: env.from.as_u32(),
                                                kind,
                                            },
                                        );
                                    }
                                }
                                self.node.on_message(
                                    env.from,
                                    msg,
                                    r,
                                    &mut self.rng,
                                    &mut self.sink,
                                );
                                self.drain_effects(round, round + 1, round + 1, dispatch);
                            }
                            self.stats.messages_delivered += survivors;
                            if survivors > 0 {
                                self.stats.delivered += 1;
                                self.stats.bytes_delivered += env.frame.len() as u64;
                            } else {
                                self.stats.lost_fault += 1;
                                if let Some(t) = self.tracer.as_mut() {
                                    t.record(
                                        round,
                                        self.id.as_u32(),
                                        EventKind::DropLoss {
                                            from: env.from.as_u32(),
                                        },
                                    );
                                }
                            }
                        }
                    }
                    self.decode_scratch = msgs;
                }
            }
        }
        self.inbox.extend(retained.drain(..));
        self.retained_scratch = retained;
        self.flush_outbox(round, round + 1, dispatch);
    }
}

/// Encodes one per-peer send group: a lone message leaves as a plain
/// frame (v1 or v2 header according to its kind), two or more as one
/// wire-v2 batch frame.
fn encode_group<M: Encode>(msgs: &[M]) -> Bytes {
    match msgs {
        [single] => encode_frame(single),
        _ => {
            let mut batch = BatchEncoder::new();
            for msg in msgs {
                batch.push(msg);
            }
            batch.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{BufMut, BytesMut};
    use rumor_net::PerfectLinks;
    use rumor_wire::{Reader, WireError};

    /// Echo node: replies `msg + 1` to the sender, records timers.
    struct Echo {
        id: PeerId,
        received: Vec<(PeerId, u32)>,
        timers: Vec<u64>,
        statuses: Vec<bool>,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Num(u32);

    impl Encode for Num {
        fn kind(&self) -> u8 {
            1
        }
        fn payload_len(&self) -> usize {
            4
        }
        fn encode_payload(&self, buf: &mut BytesMut) {
            buf.put_u32(self.0);
        }
    }

    impl Decode for Num {
        fn decode_payload(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
            if kind != 1 {
                return Err(WireError::UnknownKind { kind });
            }
            let mut r = Reader::new(payload);
            let n = Num(r.u32()?);
            r.finish()?;
            Ok(n)
        }
    }

    impl Node for Echo {
        type Msg = Num;
        fn id(&self) -> PeerId {
            self.id
        }
        fn on_message(
            &mut self,
            from: PeerId,
            msg: Num,
            _round: Round,
            _rng: &mut ChaCha8Rng,
            out: &mut EffectSink<Num>,
        ) {
            self.received.push((from, msg.0));
            if msg.0 > 0 {
                out.send(from, Num(msg.0 - 1));
            }
        }
        fn on_timer(
            &mut self,
            tag: u64,
            _round: Round,
            _rng: &mut ChaCha8Rng,
            _out: &mut EffectSink<Num>,
        ) {
            self.timers.push(tag);
        }
        fn on_status_change(
            &mut self,
            online: bool,
            _round: Round,
            _rng: &mut ChaCha8Rng,
            _out: &mut EffectSink<Num>,
        ) {
            self.statuses.push(online);
        }
    }

    fn cell(id: u32) -> NodeCell<Echo> {
        NodeCell::new(
            PeerId::new(id),
            Echo {
                id: PeerId::new(id),
                received: Vec::new(),
                timers: Vec::new(),
                statuses: Vec::new(),
            },
            id as u64 + 1,
            id as u64 + 100,
            DelaySpec::default(),
        )
    }

    fn envelope(from: u32, deliver_from: u32, value: u32) -> Envelope {
        Envelope {
            from: PeerId::new(from),
            deliver_from,
            delay_resolved: false,
            frame: encode_frame(&Num(value)),
        }
    }

    #[test]
    fn delivery_round_trips_through_the_codec() {
        let mut c = cell(0);
        c.inbox.push_back(envelope(7, 1, 5));
        let mut out = Vec::new();
        c.tick(1, true, &PerfectLinks, &mut |to, env| out.push((to, env)));
        assert_eq!(c.node.received, vec![(PeerId::new(7), 5)]);
        assert_eq!(c.stats.delivered, 1);
        assert_eq!(c.stats.decode_errors, 0);
        // The reply was re-encoded for the wire.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, PeerId::new(7));
        assert_eq!(out[0].1.deliver_from, 2);
        assert_eq!(decode_frame::<Num>(&out[0].1.frame).unwrap(), Num(4));
        assert_eq!(c.stats.sent, 1);
        assert_eq!(c.stats.bytes_sent, out[0].1.frame.len() as u64);
    }

    #[test]
    fn early_frames_wait_for_their_round() {
        let mut c = cell(0);
        c.inbox.push_back(envelope(1, 3, 0));
        let mut drop_dispatch = |_: PeerId, _: Envelope| {};
        c.tick(2, true, &PerfectLinks, &mut drop_dispatch);
        assert!(c.node.received.is_empty());
        assert_eq!(c.pending_frames(), 1);
        c.tick(3, true, &PerfectLinks, &mut drop_dispatch);
        assert_eq!(c.node.received.len(), 1);
    }

    #[test]
    fn offline_target_loses_frames_and_due_timers() {
        let mut c = cell(0);
        c.inbox.push_back(envelope(1, 1, 0));
        let mut drop_dispatch = |_: PeerId, _: Envelope| {};
        // Arm a timer at round 0 (fires round 1 at the earliest).
        c.initiate(0, |_node, _rng, sink| sink.timer(1, 42), &mut drop_dispatch);
        c.tick(0, true, &PerfectLinks, &mut drop_dispatch);
        c.tick(1, false, &PerfectLinks, &mut drop_dispatch);
        assert_eq!(c.stats.lost_offline, 1);
        assert!(c.node.timers.is_empty(), "offline due timer dropped");
        assert_eq!(c.pending_timers(), 0);
    }

    #[test]
    fn stale_frames_after_a_crash_gap_count_as_offline_losses() {
        let mut c = cell(0);
        let mut drop_dispatch = |_: PeerId, _: Envelope| {};
        c.tick(0, true, &PerfectLinks, &mut drop_dispatch);
        // Rounds 1-2 the node is "crashed" (no ticks); a frame became
        // deliverable at round 1.
        c.inbox.push_back(envelope(1, 1, 0));
        // Frame deliverable exactly at the restart round is delivered.
        c.inbox.push_back(envelope(1, 3, 9));
        c.tick(3, true, &PerfectLinks, &mut drop_dispatch);
        assert_eq!(c.stats.lost_offline, 1);
        assert_eq!(c.node.received, vec![(PeerId::new(1), 9)]);
    }

    #[test]
    fn corrupt_frames_are_counted_not_panicked() {
        let mut c = cell(0);
        // Valid v1 header, unknown kind: a decode error proper.
        let mut env = envelope(1, 1, 0);
        env.frame = Bytes::copy_from_slice(&[1, 0xEE, 0, 0, 0, 0]);
        c.inbox.push_back(env);
        // Foreign version byte: counted as a version mismatch instead.
        let mut env = envelope(1, 1, 0);
        env.frame = Bytes::copy_from_slice(&[0xFF, 0, 0, 0, 0, 0]);
        c.inbox.push_back(env);
        c.tick(1, true, &PerfectLinks, &mut |_, _| {});
        assert_eq!(c.stats.decode_errors, 1);
        assert_eq!(c.stats.version_mismatches, 1);
        assert_eq!(c.stats.delivered, 0);
        assert_eq!(c.stats.consumed(), 2);
    }

    #[test]
    fn status_transitions_fire_once() {
        let mut c = cell(0);
        let mut drop_dispatch = |_: PeerId, _: Envelope| {};
        c.tick(0, true, &PerfectLinks, &mut drop_dispatch);
        assert!(c.node.statuses.is_empty(), "priming is not a transition");
        c.tick(1, false, &PerfectLinks, &mut drop_dispatch);
        c.tick(2, false, &PerfectLinks, &mut drop_dispatch);
        c.tick(3, true, &PerfectLinks, &mut drop_dispatch);
        assert_eq!(c.node.statuses, vec![false, true]);
    }

    #[test]
    fn crash_gap_frames_are_not_resurrected_by_the_delay_model() {
        // Regression: the stale-gap drop must run before the extra-delay
        // draw, otherwise a frame that became deliverable while the node
        // was crashed could be postponed into a live round and delivered.
        let mut c = NodeCell::new(
            PeerId::new(0),
            Echo {
                id: PeerId::new(0),
                received: Vec::new(),
                timers: Vec::new(),
                statuses: Vec::new(),
            },
            1,
            2,
            DelaySpec {
                max_extra_rounds: 3,
            },
        );
        let mut drop_dispatch = |_: PeerId, _: Envelope| {};
        c.tick(0, true, &PerfectLinks, &mut drop_dispatch);
        // Rounds 1-4: crashed (no ticks). Frames became deliverable at
        // rounds 1 and 3.
        c.inbox.push_back(envelope(1, 1, 0));
        c.inbox.push_back(envelope(1, 3, 1));
        for round in 5..12 {
            c.tick(round, true, &PerfectLinks, &mut drop_dispatch);
        }
        assert_eq!(c.stats.lost_offline, 2, "both gap frames dropped");
        assert!(c.node.received.is_empty(), "gap frames must never deliver");
    }

    #[test]
    fn extra_delay_postpones_but_never_loses() {
        let mut c = NodeCell::new(
            PeerId::new(0),
            Echo {
                id: PeerId::new(0),
                received: Vec::new(),
                timers: Vec::new(),
                statuses: Vec::new(),
            },
            1,
            2,
            DelaySpec {
                max_extra_rounds: 3,
            },
        );
        let mut drop_dispatch = |_: PeerId, _: Envelope| {};
        for i in 0..8 {
            c.inbox.push_back(envelope(1, 1, i));
        }
        for round in 0..8 {
            c.tick(round, true, &PerfectLinks, &mut drop_dispatch);
        }
        assert_eq!(c.stats.delivered, 8, "every frame eventually arrives");
    }

    #[test]
    fn every_corruption_class_counts_a_decode_error_and_the_cell_survives() {
        use rumor_wire::{garbage_frame, FrameCorruption};
        let clean = encode_frame(&Num(5));
        // Payload/kind/length damage stays a decode error; version-byte
        // damage (bump, flip at 0, garbage) is a version mismatch.
        let decode_bad: Vec<Bytes> = vec![
            FrameCorruption::Truncate { keep: 3 }.apply(&clean),
            FrameCorruption::ForgeKind { kind: 0xEE }.apply(&clean),
            FrameCorruption::InflateLength { extra: 9 }.apply(&clean),
        ];
        let version_bad: Vec<Bytes> = vec![
            FrameCorruption::BumpVersion.apply(&clean),
            FrameCorruption::FlipByte { index: 0 }.apply(&clean),
            garbage_frame(16, 0xAB),
        ];
        let (decode_total, version_total) = (decode_bad.len() as u64, version_bad.len() as u64);
        let mut c = cell(0);
        for frame in decode_bad.into_iter().chain(version_bad) {
            c.inbox.push_back(Envelope {
                from: PeerId::new(1),
                deliver_from: 1,
                delay_resolved: false,
                frame,
            });
        }
        c.inbox.push_back(envelope(1, 1, 9));
        c.tick(1, true, &PerfectLinks, &mut |_, _| {});
        assert_eq!(
            c.stats.decode_errors, decode_total,
            "each bad frame is counted"
        );
        assert_eq!(
            c.stats.version_mismatches, version_total,
            "version damage is counted apart"
        );
        assert_eq!(c.stats.delivered, 1, "the clean frame still delivers");
        assert_eq!(c.node.received, vec![(PeerId::new(1), 9)]);
        assert_eq!(
            c.stats.consumed(),
            decode_total + version_total + 1,
            "rejects balance the in-flight ledger"
        );
    }

    use crate::byzantine::{ByzantineBehaviour, ByzantineState};

    #[test]
    fn digest_liar_rewrites_outgoing_messages() {
        let mut c = cell(0);
        let liar: rumor_sim::MsgTamper<Num> = |msg| match msg {
            Num(0) => None,
            Num(_) => Some(Num(0)),
        };
        c.set_byzantine(ByzantineState::new(
            ByzantineBehaviour::DigestLie,
            9,
            Some(liar),
        ));
        let mut out = Vec::new();
        c.initiate(
            0,
            |_node, _rng, sink| sink.send(PeerId::new(1), Num(7)),
            &mut |to, env| out.push((to, env)),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(decode_frame::<Num>(&out[0].1.frame).unwrap(), Num(0));
        assert_eq!(c.stats.tampered, 1);
    }

    #[test]
    fn corrupt_frames_member_emits_undecodable_frames() {
        let mut c = cell(0);
        c.set_byzantine(ByzantineState::new(
            ByzantineBehaviour::CorruptFrames,
            5,
            None,
        ));
        let mut out = Vec::new();
        c.initiate(
            0,
            |_node, _rng, sink| sink.send(PeerId::new(1), Num(3)),
            &mut |to, env| out.push((to, env)),
        );
        assert_eq!(out.len(), 1);
        assert!(decode_frame::<Num>(&out[0].1.frame).is_err());
        assert_eq!(c.stats.tampered, 1);
        assert_eq!(c.stats.sent, 1);
        assert_eq!(c.stats.bytes_sent, out[0].1.frame.len() as u64);
    }

    #[test]
    fn stale_replay_member_reinjects_remembered_frames() {
        let mut c = cell(0);
        c.set_byzantine(ByzantineState::new(
            ByzantineBehaviour::StaleReplay,
            11,
            None,
        ));
        let mut out = Vec::new();
        c.initiate(
            0,
            |_node, _rng, sink| sink.send(PeerId::new(1), Num(1)),
            &mut |to, env| out.push((to, env)),
        );
        assert_eq!(out.len(), 1, "nothing to replay yet");
        assert_eq!(c.stats.tampered, 0);
        c.initiate(
            1,
            |_node, _rng, sink| sink.send(PeerId::new(2), Num(2)),
            &mut |to, env| out.push((to, env)),
        );
        assert_eq!(out.len(), 3, "second send carries a stale replay");
        assert_eq!(c.stats.tampered, 1);
        assert_eq!(c.stats.sent, 3, "replays count as sends");
        let replayed = decode_frame::<Num>(&out[2].1.frame).unwrap();
        assert!(
            replayed == Num(1) || replayed == Num(2),
            "replay is a real old frame"
        );
    }

    /// Fan-out node: on round start, sends `copies` messages to peer 1
    /// and one to peer 2 (exercising per-peer grouping).
    struct FanOut {
        id: PeerId,
        copies: u32,
        received: Vec<(PeerId, u32)>,
    }

    impl Node for FanOut {
        type Msg = Num;
        fn id(&self) -> PeerId {
            self.id
        }
        fn on_message(
            &mut self,
            from: PeerId,
            msg: Num,
            _round: Round,
            _rng: &mut ChaCha8Rng,
            _out: &mut EffectSink<Num>,
        ) {
            self.received.push((from, msg.0));
        }
        fn on_round_start(
            &mut self,
            _round: Round,
            _rng: &mut ChaCha8Rng,
            out: &mut EffectSink<Num>,
        ) {
            for n in 0..self.copies {
                out.send(PeerId::new(1), Num(n));
            }
            out.send(PeerId::new(2), Num(99));
        }
    }

    fn v2_fanout_cell(copies: u32) -> NodeCell<FanOut> {
        let mut c = NodeCell::new(
            PeerId::new(0),
            FanOut {
                id: PeerId::new(0),
                copies,
                received: Vec::new(),
            },
            1,
            2,
            DelaySpec::default(),
        );
        c.set_wire(WireVersion::V2);
        c
    }

    #[test]
    fn v2_cell_coalesces_per_peer_sends_into_batch_frames() {
        let mut c = v2_fanout_cell(16);
        let mut out = Vec::new();
        c.tick(0, true, &PerfectLinks, &mut |to, env| out.push((to, env)));
        // Two frames left: one batch of 16 for peer 1, one plain frame
        // for peer 2 — instead of wire v1's seventeen frames.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, PeerId::new(1));
        assert_eq!(out[1].0, PeerId::new(2));
        assert_eq!(c.stats.sent, 2);
        assert_eq!(c.stats.messages_sent, 17);
        let mut batch: Vec<Num> = Vec::new();
        decode_frame_v2(&out[0].1.frame, &mut batch).expect("batch decodes");
        assert_eq!(batch, (0..16).map(Num).collect::<Vec<_>>());
        // The singleton went out as a plain decodable v1 frame.
        assert_eq!(decode_frame::<Num>(&out[1].1.frame).unwrap(), Num(99));
        // Header amortisation: the batch undercuts sixteen lone frames.
        assert!(out[0].1.frame.len() < 16 * encode_frame(&Num(0)).len());
    }

    #[test]
    fn v2_cell_delivers_batches_and_counts_messages() {
        let mut c = v2_fanout_cell(0);
        let mut batch = BatchEncoder::new();
        for n in [5, 6, 7] {
            batch.push(&Num(n));
        }
        c.inbox.push_back(Envelope {
            from: PeerId::new(9),
            deliver_from: 1,
            delay_resolved: false,
            frame: batch.finish(),
        });
        c.tick(1, true, &PerfectLinks, &mut |_, _| {});
        assert_eq!(
            c.node.received,
            vec![
                (PeerId::new(9), 5),
                (PeerId::new(9), 6),
                (PeerId::new(9), 7)
            ]
        );
        assert_eq!(c.stats.delivered, 1, "one frame");
        assert_eq!(c.stats.messages_delivered, 3, "three messages");
    }

    #[test]
    fn v1_cell_counts_a_batch_as_a_version_mismatch_not_a_decode_error() {
        let mut c = cell(0);
        let mut batch = BatchEncoder::new();
        batch.push(&Num(1));
        c.inbox.push_back(Envelope {
            from: PeerId::new(9),
            deliver_from: 1,
            delay_resolved: false,
            frame: batch.finish(),
        });
        c.tick(1, true, &PerfectLinks, &mut |_, _| {});
        assert_eq!(c.stats.version_mismatches, 1);
        assert_eq!(c.stats.decode_errors, 0);
        assert!(c.node.received.is_empty());
    }

    #[test]
    fn corrupted_batch_drops_whole_and_counts_once() {
        use rumor_wire::FrameCorruption;
        let mut c = v2_fanout_cell(0);
        let mut batch = BatchEncoder::new();
        for n in 0..5 {
            batch.push(&Num(n));
        }
        let corrupted = FrameCorruption::Truncate { keep: 14 }.apply(&batch.finish());
        c.inbox.push_back(Envelope {
            from: PeerId::new(9),
            deliver_from: 1,
            delay_resolved: false,
            frame: corrupted,
        });
        c.tick(1, true, &PerfectLinks, &mut |_, _| {});
        // Five messages were lost but the ledger records exactly one
        // rejected frame and zero partial deliveries.
        assert_eq!(c.stats.decode_errors + c.stats.version_mismatches, 1);
        assert_eq!(c.stats.messages_delivered, 0);
        assert!(c.node.received.is_empty(), "no partial batch delivery");
    }

    #[test]
    fn v2_corrupt_member_damages_the_whole_batch_frame() {
        let mut c = v2_fanout_cell(3);
        c.set_byzantine(ByzantineState::new(
            ByzantineBehaviour::CorruptFrames,
            5,
            None,
        ));
        let mut out = Vec::new();
        c.tick(0, true, &PerfectLinks, &mut |to, env| out.push((to, env)));
        assert_eq!(out.len(), 2, "one frame per peer group");
        assert_eq!(c.stats.tampered, 2, "one tamper decision per frame");
        let mut scratch: Vec<Num> = Vec::new();
        for (_, env) in &out {
            scratch.clear();
            assert!(
                decode_frame_v2::<Num>(&env.frame, &mut scratch).is_err(),
                "corrupted group frame must not decode"
            );
        }
    }

    #[test]
    fn replaying_member_remembers_delivered_frames_too() {
        let mut c = cell(0);
        c.set_byzantine(ByzantineState::new(
            ByzantineBehaviour::StaleReplay,
            13,
            None,
        ));
        c.inbox.push_back(envelope(1, 1, 0));
        c.tick(1, true, &PerfectLinks, &mut |_, _| {});
        assert_eq!(c.stats.delivered, 1);
        let mut out = Vec::new();
        c.initiate(
            1,
            |_node, _rng, sink| sink.send(PeerId::new(2), Num(4)),
            &mut |to, env| out.push((to, env)),
        );
        assert_eq!(out.len(), 2, "first send already has ammunition to replay");
        assert_eq!(c.stats.tampered, 1);
    }
}
