//! The seeded crash/restart fault injector.
//!
//! Churn (the paper's availability model) and crashes are different
//! faults: a churn-offline replica's runtime keeps running and merely
//! refuses protocol work, while a *crashed* node's executor is gone — in
//! the threaded runtime the OS thread actually exits and is respawned at
//! restart, with node state surviving the gap (the paper's replicas keep
//! their stores across sessions). The injector draws both decisions from
//! one dedicated ChaCha8 substream, so a crash schedule replays
//! identically in virtual-time and threaded modes.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor_types::PeerId;

/// Crash/restart plan: per round, with probability `crash_rate`, one
/// uniformly chosen node crashes (no-op if the pick is already down) and
/// comes back `restart_after` rounds later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Per-round probability that a crash is attempted.
    pub crash_rate: f64,
    /// Rounds a crashed node stays down before its restart.
    pub restart_after: u32,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            crash_rate: 0.0,
            restart_after: 5,
        }
    }
}

/// The fault decisions for one round, in application order: restarts
/// first (a node crashed earlier comes back), then at most one new crash.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct FaultEvents {
    pub restarts: Vec<PeerId>,
    pub crash: Option<PeerId>,
}

/// Seeded crash scheduler shared by both runtime modes.
#[derive(Debug, Clone)]
pub(crate) struct FaultInjector {
    spec: FaultSpec,
    rng: ChaCha8Rng,
    down_until: Vec<Option<u32>>,
    pub crashes: u64,
    pub restarts: u64,
}

impl FaultInjector {
    pub fn new(spec: FaultSpec, seed: u64, population: usize) -> Self {
        Self {
            spec,
            rng: ChaCha8Rng::seed_from_u64(seed),
            down_until: vec![None; population],
            crashes: 0,
            restarts: 0,
        }
    }

    /// Draws this round's fault events and updates the down set.
    pub fn step(&mut self, round: u32) -> FaultEvents {
        let mut events = FaultEvents::default();
        for (i, slot) in self.down_until.iter_mut().enumerate() {
            if slot.is_some_and(|until| until <= round) {
                *slot = None;
                self.restarts += 1;
                events.restarts.push(PeerId::new(i as u32));
            }
        }
        if self.spec.crash_rate > 0.0 && self.rng.gen_bool(self.spec.crash_rate.min(1.0)) {
            let victim = self.rng.gen_range(0..self.down_until.len());
            if self.down_until[victim].is_none() {
                self.down_until[victim] = Some(round + self.spec.restart_after.max(1));
                self.crashes += 1;
                events.crash = Some(PeerId::new(victim as u32));
            }
        }
        events
    }

    /// Whether `peer` is currently crashed.
    pub fn is_down(&self, peer: PeerId) -> bool {
        self.down_until
            .get(peer.index())
            .is_some_and(Option::is_some)
    }

    /// Whether any node is currently crashed (blocks quiescence — frames
    /// may be parked in a dead node's mailbox).
    pub fn any_down(&self) -> bool {
        self.down_until.iter().any(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_rate_means_no_faults() {
        let mut inj = FaultInjector::new(FaultSpec::default(), 1, 8);
        for round in 0..50 {
            assert_eq!(inj.step(round), FaultEvents::default());
        }
        assert!(!inj.any_down());
    }

    #[test]
    fn crash_then_restart_after_the_configured_gap() {
        let spec = FaultSpec {
            crash_rate: 1.0,
            restart_after: 3,
        };
        let mut inj = FaultInjector::new(spec, 7, 4);
        let events = inj.step(0);
        let victim = events.crash.expect("rate 1.0 must crash someone");
        assert!(inj.is_down(victim));
        assert!(inj.any_down());
        // The victim restarts at round 3; other crashes may pile up on
        // the remaining nodes meanwhile.
        let mut restarted_at = None;
        for round in 1..10 {
            let events = inj.step(round);
            if events.restarts.contains(&victim) && restarted_at.is_none() {
                restarted_at = Some(round);
            }
        }
        assert_eq!(restarted_at, Some(3));
    }

    #[test]
    fn schedule_replays_per_seed() {
        let spec = FaultSpec {
            crash_rate: 0.4,
            restart_after: 2,
        };
        let run = || {
            let mut inj = FaultInjector::new(spec, 42, 16);
            (0..40).map(|r| inj.step(r)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_on_a_down_node_is_a_noop() {
        let spec = FaultSpec {
            crash_rate: 1.0,
            restart_after: 100,
        };
        let mut inj = FaultInjector::new(spec, 3, 1); // single node
        assert!(inj.step(0).crash.is_some());
        for round in 1..10 {
            assert_eq!(inj.step(round).crash, None, "round {round}");
        }
        assert_eq!(inj.crashes, 1);
    }
}
