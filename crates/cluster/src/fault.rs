//! The seeded crash/restart fault injector.
//!
//! Churn (the paper's availability model) and crashes are different
//! faults: a churn-offline replica's runtime keeps running and merely
//! refuses protocol work, while a *crashed* node's executor is gone — in
//! the threaded runtime the OS thread actually exits and is respawned at
//! restart, with node state surviving the gap (the paper's replicas keep
//! their stores across sessions). The injector draws both decisions from
//! one dedicated ChaCha8 substream, so a crash schedule replays
//! identically in virtual-time and threaded modes.

use crate::byzantine::ByzantineSpec;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor_types::PeerId;

/// Crash/restart plan: per round, with probability `crash_rate`, one
/// uniformly chosen node crashes (no-op if the pick is already down) and
/// comes back `restart_after` rounds later. The optional
/// [`ByzantineSpec`] additionally mounts a seeded fraction of the
/// population as adversarial members.
///
/// A spec is *validated* when a cluster is built
/// ([`ClusterBuilder::faults`](crate::ClusterBuilder::faults) calls
/// [`FaultSpec::validate`]): a NaN, negative or greater-than-one rate or
/// fraction, or a zero restart gap, is a typed [`FaultError`] instead of
/// a silently misbehaving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Per-round probability that a crash is attempted.
    pub crash_rate: f64,
    /// Rounds a crashed node stays down before its restart (≥ 1).
    pub restart_after: u32,
    /// The adversarial population slice (disabled by default).
    pub byzantine: ByzantineSpec,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            crash_rate: 0.0,
            restart_after: 5,
            byzantine: ByzantineSpec::default(),
        }
    }
}

impl FaultSpec {
    /// Checks every parameter, returning the spec unchanged when sound.
    ///
    /// # Errors
    ///
    /// [`FaultError::CrashRate`] when `crash_rate` is NaN, negative or
    /// above `1.0`; [`FaultError::RestartAfter`] when `restart_after`
    /// is `0` (a crash that never keeps the node down is a schedule
    /// bug, not a fault plan); [`FaultError::ByzantineFraction`] when
    /// the Byzantine fraction is NaN, negative or above `1.0`.
    pub fn validate(self) -> Result<Self, FaultError> {
        if !(0.0..=1.0).contains(&self.crash_rate) {
            return Err(FaultError::CrashRate {
                value: self.crash_rate,
            });
        }
        if self.restart_after == 0 {
            return Err(FaultError::RestartAfter);
        }
        if !(0.0..=1.0).contains(&self.byzantine.fraction) {
            return Err(FaultError::ByzantineFraction {
                value: self.byzantine.fraction,
            });
        }
        Ok(self)
    }
}

/// A rejected [`FaultSpec`] parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// `crash_rate` is not a probability (NaN, negative or > 1).
    CrashRate {
        /// The offending value.
        value: f64,
    },
    /// `restart_after` is zero.
    RestartAfter,
    /// The Byzantine fraction is not a probability (NaN, negative
    /// or > 1).
    ByzantineFraction {
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::CrashRate { value } => {
                write!(f, "crash_rate must be a probability in [0, 1], got {value}")
            }
            Self::RestartAfter => {
                write!(f, "restart_after must be at least 1 round")
            }
            Self::ByzantineFraction { value } => write!(
                f,
                "byzantine.fraction must be a probability in [0, 1], got {value}"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

/// The fault decisions for one round, in application order: restarts
/// first (a node crashed earlier comes back), then at most one new crash.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct FaultEvents {
    pub restarts: Vec<PeerId>,
    pub crash: Option<PeerId>,
}

/// Seeded crash scheduler shared by both runtime modes.
#[derive(Debug, Clone)]
pub(crate) struct FaultInjector {
    spec: FaultSpec,
    rng: ChaCha8Rng,
    down_until: Vec<Option<u32>>,
    pub crashes: u64,
    pub restarts: u64,
}

impl FaultInjector {
    pub fn new(spec: FaultSpec, seed: u64, population: usize) -> Self {
        Self {
            spec,
            rng: ChaCha8Rng::seed_from_u64(seed),
            down_until: vec![None; population],
            crashes: 0,
            restarts: 0,
        }
    }

    /// Draws this round's fault events and updates the down set.
    pub fn step(&mut self, round: u32) -> FaultEvents {
        let mut events = FaultEvents::default();
        for (i, slot) in self.down_until.iter_mut().enumerate() {
            if slot.is_some_and(|until| until <= round) {
                *slot = None;
                self.restarts += 1;
                events.restarts.push(PeerId::new(i as u32));
            }
        }
        if self.spec.crash_rate > 0.0 && self.rng.gen_bool(self.spec.crash_rate.min(1.0)) {
            let victim = self.rng.gen_range(0..self.down_until.len());
            if self.down_until[victim].is_none() {
                self.down_until[victim] = Some(round + self.spec.restart_after.max(1));
                self.crashes += 1;
                events.crash = Some(PeerId::new(victim as u32));
            }
        }
        events
    }

    /// Whether `peer` is currently crashed.
    pub fn is_down(&self, peer: PeerId) -> bool {
        self.down_until
            .get(peer.index())
            .is_some_and(Option::is_some)
    }

    /// Whether any node is currently crashed (blocks quiescence — frames
    /// may be parked in a dead node's mailbox).
    pub fn any_down(&self) -> bool {
        self.down_until.iter().any(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_rate_means_no_faults() {
        let mut inj = FaultInjector::new(FaultSpec::default(), 1, 8);
        for round in 0..50 {
            assert_eq!(inj.step(round), FaultEvents::default());
        }
        assert!(!inj.any_down());
    }

    #[test]
    fn crash_then_restart_after_the_configured_gap() {
        let spec = FaultSpec {
            crash_rate: 1.0,
            restart_after: 3,
            ..FaultSpec::default()
        };
        let mut inj = FaultInjector::new(spec, 7, 4);
        let events = inj.step(0);
        let victim = events.crash.expect("rate 1.0 must crash someone");
        assert!(inj.is_down(victim));
        assert!(inj.any_down());
        // The victim restarts at round 3; other crashes may pile up on
        // the remaining nodes meanwhile.
        let mut restarted_at = None;
        for round in 1..10 {
            let events = inj.step(round);
            if events.restarts.contains(&victim) && restarted_at.is_none() {
                restarted_at = Some(round);
            }
        }
        assert_eq!(restarted_at, Some(3));
    }

    #[test]
    fn schedule_replays_per_seed() {
        let spec = FaultSpec {
            crash_rate: 0.4,
            restart_after: 2,
            ..FaultSpec::default()
        };
        let run = || {
            let mut inj = FaultInjector::new(spec, 42, 16);
            (0..40).map(|r| inj.step(r)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_on_a_down_node_is_a_noop() {
        let spec = FaultSpec {
            crash_rate: 1.0,
            restart_after: 100,
            ..FaultSpec::default()
        };
        let mut inj = FaultInjector::new(spec, 3, 1); // single node
        assert!(inj.step(0).crash.is_some());
        for round in 1..10 {
            assert_eq!(inj.step(round).crash, None, "round {round}");
        }
        assert_eq!(inj.crashes, 1);
    }

    #[test]
    fn sound_specs_validate_unchanged() {
        for spec in [
            FaultSpec::default(),
            FaultSpec {
                crash_rate: 1.0,
                restart_after: 1,
                ..FaultSpec::default()
            },
            FaultSpec {
                byzantine: crate::ByzantineSpec {
                    fraction: 1.0,
                    behaviour: crate::ByzantineBehaviour::DigestLie,
                },
                ..FaultSpec::default()
            },
        ] {
            assert_eq!(spec.validate(), Ok(spec));
        }
    }

    #[test]
    fn bad_crash_rates_are_typed_errors() {
        for bad in [f64::NAN, -0.01, 1.01, f64::INFINITY, f64::NEG_INFINITY] {
            let spec = FaultSpec {
                crash_rate: bad,
                ..FaultSpec::default()
            };
            assert!(
                matches!(spec.validate(), Err(FaultError::CrashRate { .. })),
                "crash_rate {bad} slipped through"
            );
        }
    }

    #[test]
    fn zero_restart_gap_is_rejected() {
        let spec = FaultSpec {
            restart_after: 0,
            ..FaultSpec::default()
        };
        assert_eq!(spec.validate(), Err(FaultError::RestartAfter));
    }

    #[test]
    fn bad_byzantine_fractions_are_typed_errors() {
        for bad in [f64::NAN, -1.0, 1.5] {
            let spec = FaultSpec {
                byzantine: crate::ByzantineSpec {
                    fraction: bad,
                    ..crate::ByzantineSpec::default()
                },
                ..FaultSpec::default()
            };
            assert!(
                matches!(spec.validate(), Err(FaultError::ByzantineFraction { .. })),
                "fraction {bad} slipped through"
            );
        }
    }

    #[test]
    fn fault_errors_render_the_offending_value() {
        let err = FaultSpec {
            crash_rate: 2.0,
            ..FaultSpec::default()
        }
        .validate()
        .unwrap_err();
        assert!(err.to_string().contains("2"));
        assert!(FaultError::RestartAfter.to_string().contains("at least 1"));
    }
}
