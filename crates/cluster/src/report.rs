//! Aggregated outcome of a cluster run.

use crate::cell::CellStats;
use rumor_types::PeerId;

/// What a cluster run produced: wire-level traffic totals (frames *and*
/// bytes — every message crossed the `rumor-wire` codec), fault counts,
/// and the awareness outcome for the tracked update.
///
/// `aware_set` is the sorted list of every replica aware of the tracked
/// update — crashed and churn-offline replicas included — so two runs of
/// the same scenario can be compared set-for-set (the cluster/engine
/// parity suite does exactly that).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterReport {
    /// Rounds (ticks) executed.
    pub rounds: u32,
    /// Frames handed to the transport (sends to offline peers included,
    /// per the paper's overhead metric).
    pub frames_sent: u64,
    /// Encoded bytes of `frames_sent` (header + payload per frame).
    pub bytes_sent: u64,
    /// Logical protocol messages inside `frames_sent`. Equal to
    /// `frames_sent` under wire v1 (one message per frame); larger under
    /// wire v2, where per-peer batch frames carry whole round groups.
    pub messages_sent: u64,
    /// Frames delivered to an online node and decoded successfully.
    pub frames_delivered: u64,
    /// Encoded bytes of `frames_delivered`.
    pub bytes_delivered: u64,
    /// Logical messages handed to nodes out of `frames_delivered`.
    pub messages_delivered: u64,
    /// Frames dropped because the target was offline or crashed.
    pub lost_offline: u64,
    /// Frames dropped by the link-fault filter (loss / partition).
    pub lost_fault: u64,
    /// Frames that failed strict decoding (0 in a healthy cluster).
    pub decode_errors: u64,
    /// Frames dropped for carrying a codec version the receiver does
    /// not speak — v1/v2 coexistence drops, counted apart from
    /// `decode_errors` (0 in a version-homogeneous cluster).
    pub version_mismatches: u64,
    /// Sends the Byzantine members tampered with (0 without adversaries).
    pub frames_tampered: u64,
    /// Node crashes injected.
    pub crashes: u64,
    /// Node restarts performed.
    pub restarts: u64,
    /// Nodes online (and not crashed) at the end of the run.
    pub online: usize,
    /// Of those, how many were aware of the tracked update.
    pub aware_online: usize,
    /// First round at which every online node was aware, if reached.
    pub converged_round: Option<u32>,
    /// Every aware replica (offline included), sorted ascending.
    pub aware_set: Vec<PeerId>,
    /// Replicas mounted as Byzantine members.
    pub byzantine: usize,
}

/// Run-level context a report is folded from (both runtime modes fold
/// through here so the stats arithmetic can never diverge between
/// them).
#[derive(Debug, Clone)]
pub(crate) struct RunOutcome {
    pub rounds: u32,
    pub crashes: u64,
    pub restarts: u64,
    pub online: usize,
    pub aware_online: usize,
    pub converged_round: Option<u32>,
    pub aware_set: Vec<PeerId>,
    pub byzantine: usize,
}

impl ClusterReport {
    /// Folds per-cell traffic stats plus the run outcome into a report.
    pub(crate) fn fold<'a>(
        outcome: RunOutcome,
        stats: impl IntoIterator<Item = &'a CellStats>,
    ) -> Self {
        let mut report = Self {
            rounds: outcome.rounds,
            frames_sent: 0,
            bytes_sent: 0,
            messages_sent: 0,
            frames_delivered: 0,
            bytes_delivered: 0,
            messages_delivered: 0,
            lost_offline: 0,
            lost_fault: 0,
            decode_errors: 0,
            version_mismatches: 0,
            frames_tampered: 0,
            crashes: outcome.crashes,
            restarts: outcome.restarts,
            online: outcome.online,
            aware_online: outcome.aware_online,
            converged_round: outcome.converged_round,
            aware_set: outcome.aware_set,
            byzantine: outcome.byzantine,
        };
        for cell in stats {
            report.frames_sent += cell.sent;
            report.bytes_sent += cell.bytes_sent;
            report.messages_sent += cell.messages_sent;
            report.frames_delivered += cell.delivered;
            report.bytes_delivered += cell.bytes_delivered;
            report.messages_delivered += cell.messages_delivered;
            report.lost_offline += cell.lost_offline;
            report.lost_fault += cell.lost_fault;
            report.decode_errors += cell.decode_errors;
            report.version_mismatches += cell.version_mismatches;
            report.frames_tampered += cell.tampered;
        }
        report
    }

    /// Aware fraction of the final online population.
    pub fn aware_online_fraction(&self) -> f64 {
        if self.online == 0 {
            0.0
        } else {
            self.aware_online as f64 / self.online as f64
        }
    }

    /// Mean encoded frame size over everything sent.
    pub fn mean_frame_bytes(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.frames_sent as f64
        }
    }

    /// Mean wire bytes per *logical message* sent — the bandwidth-diet
    /// metric. Under wire v1 this equals [`ClusterReport::mean_frame_bytes`];
    /// under wire v2 batching amortises headers across the group and
    /// this falls below it.
    pub fn mean_message_bytes(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ClusterReport {
        ClusterReport {
            rounds: 10,
            frames_sent: 4,
            bytes_sent: 100,
            messages_sent: 10,
            frames_delivered: 3,
            bytes_delivered: 75,
            messages_delivered: 8,
            lost_offline: 1,
            lost_fault: 0,
            decode_errors: 0,
            version_mismatches: 0,
            frames_tampered: 0,
            crashes: 1,
            restarts: 1,
            online: 8,
            aware_online: 6,
            converged_round: None,
            aware_set: vec![PeerId::new(0)],
            byzantine: 0,
        }
    }

    #[test]
    fn derived_fractions() {
        let r = report();
        assert_eq!(r.aware_online_fraction(), 0.75);
        assert_eq!(r.mean_frame_bytes(), 25.0);
        assert_eq!(r.mean_message_bytes(), 10.0);
    }

    #[test]
    fn zero_guards() {
        let mut r = report();
        r.online = 0;
        r.frames_sent = 0;
        r.messages_sent = 0;
        assert_eq!(r.aware_online_fraction(), 0.0);
        assert_eq!(r.mean_frame_bytes(), 0.0);
        assert_eq!(r.mean_message_bytes(), 0.0);
    }
}
