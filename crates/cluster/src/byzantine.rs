//! Adversarial (Byzantine) cluster members.
//!
//! The crash/restart injector models benign failure: a crashed replica
//! is silent. Malkhi, Mansour & Reiter's Byzantine diffusion model asks
//! the harder question — what happens when a replica keeps talking but
//! *lies*? This module turns a seeded fraction of the population into
//! liars. A Byzantine member runs the ordinary node logic (so it stays
//! indistinguishable until it speaks) and tampers at the wire boundary,
//! where both runtime modes already funnel every message:
//!
//! * [`ByzantineBehaviour::DigestLie`] — rewrites outgoing messages
//!   through the protocol's typed liar
//!   ([`rumor_sim::Protocol::byzantine_liar`]); the paper peer's liar
//!   answers pull digests with "you are missing nothing".
//! * [`ByzantineBehaviour::StaleReplay`] — remembers frames it has sent
//!   or delivered and re-injects old ones alongside fresh sends,
//!   replaying stale and tombstoned updates bit-for-bit.
//! * [`ByzantineBehaviour::CorruptFrames`] — damages outgoing frames
//!   with [`rumor_wire::FrameCorruption`] draws; receivers count the
//!   rejects as decode errors.
//! * [`ByzantineBehaviour::Mixed`] — cycles through all three.
//!
//! Selection and every tampering decision draw from the dedicated
//! `"cluster/byzantine"` seed substream, so a Byzantine schedule replays
//! identically in virtual-time mode and is independent of the crash,
//! churn and link streams (a benign run's golden pins never move).

use bytes::Bytes;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor_sim::MsgTamper;
use rumor_types::derive_seed;
use rumor_wire::FrameCorruption;
use std::collections::VecDeque;

/// How many remembered frames a stale-replaying member keeps.
const REPLAY_MEMORY: usize = 32;

/// The adversarial slice of a [`FaultSpec`](crate::FaultSpec): what
/// fraction of the population is Byzantine and how those members
/// misbehave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ByzantineSpec {
    /// Fraction of the population (rounded to the nearest whole number
    /// of replicas) mounted as Byzantine members. `0.0` — the default —
    /// disables the adversary entirely.
    pub fraction: f64,
    /// The lie those members tell.
    pub behaviour: ByzantineBehaviour,
}

impl Default for ByzantineSpec {
    fn default() -> Self {
        Self {
            fraction: 0.0,
            behaviour: ByzantineBehaviour::Mixed,
        }
    }
}

impl ByzantineSpec {
    /// Number of Byzantine members in a population of `population`.
    pub fn count(&self, population: usize) -> usize {
        ((self.fraction * population as f64).round() as usize).min(population)
    }
}

/// The catalogue of adversarial behaviours a Byzantine member performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineBehaviour {
    /// Lie in pull digests: outgoing messages pass through the
    /// protocol's typed liar, which (for the paper peer) empties pull
    /// responses so pull-based repair starves.
    DigestLie,
    /// Replay stale/tombstoned updates: old frames this member sent or
    /// delivered are re-injected alongside fresh traffic.
    StaleReplay,
    /// Push corrupt `rumor-wire` frames: outgoing frames are damaged so
    /// strict decoding rejects them at the receiver.
    CorruptFrames,
    /// Rotate through the three behaviours, one per outgoing message.
    Mixed,
}

/// Deterministically selects which peers are Byzantine: a partial
/// Fisher–Yates over the population, drawn from the
/// `"cluster/byzantine"` substream of the scenario seed. Returns one
/// flag per peer. Draws nothing when the spec selects nobody, so benign
/// runs consume no extra randomness.
pub(crate) fn select_byzantine(seed: u64, population: usize, spec: &ByzantineSpec) -> Vec<bool> {
    let mut flags = vec![false; population];
    let count = spec.count(population);
    if count == 0 {
        return flags;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, "cluster/byzantine"));
    let mut pool: Vec<usize> = (0..population).collect();
    for slot in 0..count {
        let pick = rng.gen_range(slot..pool.len());
        pool.swap(slot, pick);
        flags[pool[slot]] = true;
    }
    flags
}

/// Per-peer seed stream for Byzantine members' tampering decisions.
pub(crate) fn byzantine_seed(seed: u64, peer_index: u64) -> u64 {
    rumor_types::SeedSequence::new(derive_seed(seed, "cluster/byzantine"), "rng")
        .seed_at(peer_index)
}

/// The adversarial state mounted on one Byzantine member's cell.
#[derive(Debug)]
pub(crate) struct ByzantineState<M> {
    behaviour: ByzantineBehaviour,
    rng: ChaCha8Rng,
    liar: Option<MsgTamper<M>>,
    memory: VecDeque<Bytes>,
    turn: u64,
}

/// What a Byzantine member decided to do with one outgoing message.
pub(crate) struct Tampered<M> {
    /// The (possibly forged) message to encode, or an already-corrupted
    /// frame to send as-is.
    pub outgoing: TamperedFrame<M>,
    /// An old frame to replay to the same target, on top of the send.
    pub replay: Option<Bytes>,
    /// Whether the member actually lied this turn (for accounting).
    pub tampered: bool,
}

/// The outgoing half of a tampering decision.
pub(crate) enum TamperedFrame<M> {
    /// Encode and send this message (forged or original).
    Message(M),
    /// Send these bytes verbatim (a corrupted frame).
    Raw(Bytes),
}

/// What a Byzantine member decided to do with one outgoing frame group
/// — the wire-v2 flush unit, where all of a tick's messages to one peer
/// leave as a single (batch) frame.
pub(crate) struct TamperedGroup {
    /// The frame to put on the wire (clean, forged or corrupted).
    pub frame: Bytes,
    /// An old frame to replay to the same target, on top of the send.
    pub replay: Option<Bytes>,
    /// Whether the member actually lied this turn (for accounting).
    pub tampered: bool,
}

impl<M> ByzantineState<M> {
    pub fn new(behaviour: ByzantineBehaviour, seed: u64, liar: Option<MsgTamper<M>>) -> Self {
        Self {
            behaviour,
            rng: ChaCha8Rng::seed_from_u64(seed),
            liar,
            memory: VecDeque::new(),
            turn: 0,
        }
    }

    /// The behaviour governing the next outgoing message (resolves
    /// [`ByzantineBehaviour::Mixed`] by rotation).
    fn next_behaviour(&mut self) -> ByzantineBehaviour {
        let turn = self.turn;
        self.turn += 1;
        match self.behaviour {
            ByzantineBehaviour::Mixed => match turn % 3 {
                0 => ByzantineBehaviour::DigestLie,
                1 => ByzantineBehaviour::StaleReplay,
                _ => ByzantineBehaviour::CorruptFrames,
            },
            fixed => fixed,
        }
    }

    /// Whether this member hoards frames for later replay.
    pub fn replays(&self) -> bool {
        matches!(
            self.behaviour,
            ByzantineBehaviour::StaleReplay | ByzantineBehaviour::Mixed
        )
    }

    /// Adds a frame to the bounded replay memory.
    pub fn remember(&mut self, frame: &Bytes) {
        if self.memory.len() == REPLAY_MEMORY {
            self.memory.pop_front();
        }
        self.memory.push_back(frame.clone());
    }

    /// Decides what to do with one outgoing message. `encode` is called
    /// at most once, on the message actually leaving (so stale-replay
    /// members can remember their own clean frames).
    pub fn tamper(&mut self, msg: M, encode: impl Fn(&M) -> Bytes) -> Tampered<M> {
        match self.next_behaviour() {
            ByzantineBehaviour::DigestLie => match self.liar.and_then(|lie| lie(&msg)) {
                Some(forged) => Tampered {
                    outgoing: TamperedFrame::Message(forged),
                    replay: None,
                    tampered: true,
                },
                None => Tampered {
                    outgoing: TamperedFrame::Message(msg),
                    replay: None,
                    tampered: false,
                },
            },
            ByzantineBehaviour::CorruptFrames => {
                let clean = encode(&msg);
                let corruption =
                    FrameCorruption::from_draws(self.rng.gen::<u32>(), self.rng.gen::<u32>());
                Tampered {
                    outgoing: TamperedFrame::Raw(corruption.apply(&clean)),
                    replay: None,
                    tampered: true,
                }
            }
            ByzantineBehaviour::StaleReplay => {
                let clean = encode(&msg);
                self.remember(&clean);
                let replay = if self.memory.len() > 1 {
                    let pick = self.rng.gen_range(0..self.memory.len());
                    Some(self.memory[pick].clone())
                } else {
                    None
                };
                Tampered {
                    tampered: replay.is_some(),
                    outgoing: TamperedFrame::Raw(clean),
                    replay,
                }
            }
            ByzantineBehaviour::Mixed => unreachable!("next_behaviour resolves Mixed"),
        }
    }

    /// Frame-group analogue of [`ByzantineState::tamper`] for the
    /// wire-v2 path: one behaviour draw per outgoing *frame*, not per
    /// message. A digest-lie turn rewrites the group's messages in
    /// place before encoding; a corrupt-frames turn damages the encoded
    /// batch once, so receivers drop the whole group and count a single
    /// reject; a stale-replay turn re-injects an entire remembered
    /// frame. `encode` is called exactly once, on the clean (or forged)
    /// group.
    pub fn tamper_group(
        &mut self,
        msgs: &mut [M],
        encode: impl Fn(&[M]) -> Bytes,
    ) -> TamperedGroup {
        match self.next_behaviour() {
            ByzantineBehaviour::DigestLie => {
                let mut tampered = false;
                if let Some(lie) = self.liar {
                    for msg in msgs.iter_mut() {
                        if let Some(forged) = lie(msg) {
                            *msg = forged;
                            tampered = true;
                        }
                    }
                }
                TamperedGroup {
                    frame: encode(msgs),
                    replay: None,
                    tampered,
                }
            }
            ByzantineBehaviour::CorruptFrames => {
                let clean = encode(msgs);
                let corruption =
                    FrameCorruption::from_draws(self.rng.gen::<u32>(), self.rng.gen::<u32>());
                TamperedGroup {
                    frame: corruption.apply(&clean),
                    replay: None,
                    tampered: true,
                }
            }
            ByzantineBehaviour::StaleReplay => {
                let clean = encode(msgs);
                self.remember(&clean);
                let replay = if self.memory.len() > 1 {
                    let pick = self.rng.gen_range(0..self.memory.len());
                    Some(self.memory[pick].clone())
                } else {
                    None
                };
                TamperedGroup {
                    tampered: replay.is_some(),
                    frame: clean,
                    replay,
                }
            }
            ByzantineBehaviour::Mixed => unreachable!("next_behaviour resolves Mixed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_is_seeded_and_sized() {
        let spec = ByzantineSpec {
            fraction: 0.25,
            behaviour: ByzantineBehaviour::Mixed,
        };
        let a = select_byzantine(7, 16, &spec);
        let b = select_byzantine(7, 16, &spec);
        assert_eq!(a, b, "selection replays per seed");
        assert_eq!(a.iter().filter(|&&f| f).count(), 4);
        let other = select_byzantine(8, 16, &spec);
        assert_ne!(a, other, "different seeds pick different members");
    }

    #[test]
    fn zero_fraction_selects_nobody() {
        let flags = select_byzantine(7, 16, &ByzantineSpec::default());
        assert!(flags.iter().all(|&f| !f));
    }

    #[test]
    fn fraction_one_selects_everybody() {
        let spec = ByzantineSpec {
            fraction: 1.0,
            behaviour: ByzantineBehaviour::DigestLie,
        };
        assert!(select_byzantine(3, 9, &spec).iter().all(|&f| f));
    }

    #[test]
    fn mixed_behaviour_rotates_through_the_catalogue() {
        let mut state: ByzantineState<u32> =
            ByzantineState::new(ByzantineBehaviour::Mixed, 1, None);
        assert_eq!(state.next_behaviour(), ByzantineBehaviour::DigestLie);
        assert_eq!(state.next_behaviour(), ByzantineBehaviour::StaleReplay);
        assert_eq!(state.next_behaviour(), ByzantineBehaviour::CorruptFrames);
        assert_eq!(state.next_behaviour(), ByzantineBehaviour::DigestLie);
    }

    #[test]
    fn replay_memory_is_bounded() {
        let mut state: ByzantineState<u32> =
            ByzantineState::new(ByzantineBehaviour::StaleReplay, 1, None);
        for n in 0..100u8 {
            state.remember(&Bytes::from(vec![n]));
        }
        assert_eq!(state.memory.len(), REPLAY_MEMORY);
        assert_eq!(state.memory.front().unwrap()[0], 100 - REPLAY_MEMORY as u8);
    }
}
