//! `rumor-cluster` — the live runtime executing the sans-IO protocol
//! nodes as a running cluster.
//!
//! Every node in the rest of the workspace runs inside a lock-step
//! simulator; this crate is the executable-system path the paper's
//! evaluation ultimately speaks to: replicas that really run
//! concurrently, go down, come back, and pay for every message in
//! bytes. The same `rumor_sim::Protocol` factories mount unchanged —
//! the paper peer, every baseline, a P-Grid partition — and every
//! message between nodes round-trips through the `rumor-wire` codec,
//! so a run reports frames *and* bytes on the wire.
//!
//! Three modes over one set of runtime semantics:
//!
//! * [`VirtualCluster`] — single-threaded virtual time. Deterministic
//!   per scenario seed, bit-reproducible, golden-pinnable in `cargo
//!   test`. The correctness path.
//! * [`ThreadedCluster`] — one OS thread per replica, joined by
//!   in-process channels carrying encoded frames; a conductor paces
//!   rounds and barriers on per-tick reports. The deployment-shaped
//!   real-time path (practical to N ≈ 1–2k).
//! * [`ShardedCluster`] — M worker threads (default: available
//!   parallelism, [`ClusterBuilder::workers`] to override) each owning
//!   a contiguous shard of replicas, with cross-shard frames batched
//!   per round and the conductor barrier at shard granularity. The
//!   scale path: 10k+ live replicas, and the fastest mode in
//!   `bench_cluster` at every population.
//!
//! Both take the environment from the same declarative
//! [`rumor_sim::Scenario`] the simulation harness uses — identical
//! topology draw, initial availability, churn trajectory and
//! loss/partition semantics (`LinkFilter`) — plus cluster-only faults:
//! a seeded [`FaultSpec`] crash/restart injector (in threaded mode the
//! victim's OS thread really exits and is respawned; in sharded mode
//! the cell is parked inside its shard; node state and mailbox survive
//! either way, and frames that arrived during the gap are dropped
//! exactly like sends to an offline replica) and an optional
//! [`DelaySpec`] extra delivery delay. Quiescence detection and
//! graceful shutdown are built in: [`ThreadedCluster::finish`] stops
//! every thread, reclaims node state and folds a [`ClusterReport`].
//!
//! A fault plan can additionally mount a seeded fraction of the
//! population as *Byzantine* members ([`ByzantineSpec`]): replicas that
//! keep running the real protocol but lie at the wire boundary — empty
//! pull digests, stale-frame replays, corrupt frames (see
//! [`ByzantineBehaviour`]). Both runtime modes host them; `rumor-fuzz`
//! sweeps them against the convergence oracle.
//!
//! [`ClusterBuilder::traced`] additionally mounts structured
//! `rumor-obs` capture: each cell buffers its message-level events
//! locally, the conductor records its seeded environment decisions
//! (round starts, churn transitions, fault events, initiations), and
//! the buffers merge into one canonical `(round, node, seq)`-ordered
//! [`rumor_obs::TraceDoc`]. Capture consumes no randomness, so a traced
//! run stays bit-identical to an untraced one, and the conductor-side
//! environment sub-trace is byte-identical across all three modes.
//!
//! # Examples
//!
//! ```
//! use rumor_cluster::{ClusterBuilder, FaultSpec};
//! use rumor_core::ProtocolConfig;
//! use rumor_churn::MarkovChurn;
//! use rumor_sim::{PaperProtocol, Scenario, UpdateEvent};
//! use rumor_types::DataKey;
//!
//! let scenario = Scenario::builder(48, 11)
//!     .online_fraction(0.75)
//!     .churn(MarkovChurn::new(0.95, 0.3)?)
//!     .loss(0.02)
//!     .build()?;
//! let config = ProtocolConfig::builder(48)
//!     .fanout_absolute(4)
//!     .staleness_rounds(6)
//!     .build()?;
//! let mut cluster = ClusterBuilder::new(&scenario)
//!     .faults(FaultSpec { crash_rate: 0.1, restart_after: 3, ..FaultSpec::default() })?
//!     .virtual_time(PaperProtocol::new(config));
//! let event = UpdateEvent { round: 0, key: DataKey::from_name("motd"), delete: false, sequence: 0 };
//! let update = cluster.initiate(&event).expect("someone online");
//! let converged = cluster.run_until_all_online_aware(update, 120);
//! assert!(converged.is_some(), "update reaches every online replica");
//! let report = cluster.report(update);
//! assert_eq!(report.decode_errors, 0, "strict codec, clean traffic");
//! assert!(report.bytes_sent > report.frames_sent, "bytes accounted per frame");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod byzantine;
mod cell;
mod fault;
mod report;
mod sharded;
mod threaded;
mod trace;
mod virtual_time;

pub use builder::ClusterBuilder;
pub use byzantine::{ByzantineBehaviour, ByzantineSpec};
pub use cell::DelaySpec;
pub use fault::{FaultError, FaultSpec};
pub use report::ClusterReport;
pub use sharded::ShardedCluster;
pub use threaded::ThreadedCluster;
pub use virtual_time::VirtualCluster;

// Re-exported so downstream crates can select a codec for
// [`ClusterBuilder::wire`] without depending on `rumor-wire` directly.
pub use rumor_wire::WireVersion;
