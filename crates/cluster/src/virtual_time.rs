//! The deterministic single-threaded virtual-time mode.
//!
//! Same runtime semantics as the threaded mode — encoded frames, crash
//! faults, loss, delay — but executed on one thread in a fixed order, so
//! outcomes are bit-reproducible per scenario seed and can be
//! golden-pinned by `cargo test`. The multi-threaded
//! [`ThreadedCluster`](crate::ThreadedCluster) is the throughput path;
//! this is the correctness path.

use crate::cell::{DelaySpec, Envelope, NodeCell};
use crate::fault::{FaultInjector, FaultSpec};
use crate::report::ClusterReport;
use crate::trace::ConductorTrace;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor_churn::{Churn, OnlineSet};
use rumor_net::{LinkFilter, Node};
use rumor_obs::TraceDoc;
use rumor_sim::{Protocol, Scenario, UpdateEvent};
use rumor_types::{derive_seed, PeerId, Round, UpdateId};
use rumor_wire::{Decode, Encode};

/// A live cluster executed deterministically in virtual time.
///
/// Build one with
/// [`ClusterBuilder::virtual_time`](crate::ClusterBuilder::virtual_time).
pub struct VirtualCluster<P: Protocol>
where
    <P::Node as Node>::Msg: Encode + Decode,
{
    protocol: P,
    cells: Vec<NodeCell<P::Node>>,
    online: OnlineSet,
    churn: Box<dyn Churn>,
    churn_rng: ChaCha8Rng,
    ctrl_rng: ChaCha8Rng,
    filter: Box<dyn LinkFilter + Send + Sync>,
    faults: FaultInjector,
    byzantine: Vec<bool>,
    rounds_run: u32,
    converged_round: Option<u32>,
    /// The update the convergence round belongs to; tracking a
    /// different update resets `converged_round`.
    probed_update: Option<UpdateId>,
    staged: Vec<(PeerId, Envelope)>,
    seed: u64,
    trace: Option<ConductorTrace>,
}

impl<P: Protocol> std::fmt::Debug for VirtualCluster<P>
where
    <P::Node as Node>::Msg: Encode + Decode,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualCluster")
            .field("population", &self.cells.len())
            .field("rounds_run", &self.rounds_run)
            .finish_non_exhaustive()
    }
}

impl<P: Protocol> VirtualCluster<P>
where
    <P::Node as Node>::Msg: Encode + Decode,
{
    pub(crate) fn mount(
        scenario: &Scenario,
        protocol: P,
        faults: FaultSpec,
        delay: DelaySpec,
        wire: rumor_wire::WireVersion,
        trace: bool,
    ) -> Self {
        let online = scenario.initial_online_set();
        let (cells, byzantine) =
            crate::builder::build_cells(scenario, &protocol, &online, &faults, delay, wire, trace);
        let population = cells.len();
        let trace = trace.then(|| ConductorTrace::new(&online, population));
        Self {
            protocol,
            cells,
            online,
            churn: scenario.make_churn(),
            churn_rng: ChaCha8Rng::seed_from_u64(derive_seed(scenario.seed(), "churn")),
            ctrl_rng: ChaCha8Rng::seed_from_u64(derive_seed(scenario.seed(), "cluster/control")),
            filter: scenario.link_filter(),
            faults: FaultInjector::new(
                faults,
                derive_seed(scenario.seed(), "cluster/fault"),
                population,
            ),
            byzantine,
            rounds_run: 0,
            converged_round: None,
            probed_update: None,
            staged: Vec::new(),
            seed: scenario.seed(),
            trace,
        }
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.cells.len()
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> u32 {
        self.rounds_run
    }

    /// Nodes that are churn-online *and* not crashed.
    pub fn online_count(&self) -> usize {
        (0..self.cells.len())
            .filter(|&i| self.effective_online(PeerId::new(i as u32)))
            .count()
    }

    fn effective_online(&self, peer: PeerId) -> bool {
        self.online.is_online(peer) && !self.faults.is_down(peer)
    }

    /// Whether `peer` was mounted as a Byzantine member.
    pub fn is_byzantine(&self, peer: PeerId) -> bool {
        self.byzantine.get(peer.index()).copied().unwrap_or(false)
    }

    /// Read access to `peer`'s protocol node (for external oracles that
    /// inspect replica state, e.g. the chaos fuzzer's convergence check).
    pub fn node(&self, peer: PeerId) -> &P::Node {
        &self.cells[peer.index()].node
    }

    /// Peers that are churn-online and not crashed right now, ascending.
    pub fn online_peers(&self) -> Vec<PeerId> {
        (0..self.cells.len() as u32)
            .map(PeerId::new)
            .filter(|&p| self.effective_online(p))
            .collect()
    }

    /// Initiates `event` at a random effectively-online node (its round-0
    /// frames are delivered next tick). `None` when nobody is up.
    pub fn initiate(&mut self, event: &UpdateEvent) -> Option<UpdateId> {
        let candidates: Vec<PeerId> = (0..self.cells.len() as u32)
            .map(PeerId::new)
            .filter(|&p| self.effective_online(p))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let initiator = candidates[self.ctrl_rng.gen_range(0..candidates.len())];
        let round = self.rounds_run;
        let mut staged = std::mem::take(&mut self.staged);
        let protocol = &self.protocol;
        let update = self.cells[initiator.index()].initiate(
            round,
            |node, rng, sink| protocol.initiate(node, event, Round::new(round), rng, sink),
            &mut |to, env| staged.push((to, env)),
        );
        for (to, env) in staged.drain(..) {
            self.cells[to.index()].inbox.push_back(env);
        }
        self.staged = staged;
        if let Some(trace) = self.trace.as_mut() {
            trace.initiate(round, initiator, update);
        }
        Some(update)
    }

    /// Executes one round: churn transition (after round 0), fault
    /// events, one tick per live node in id order, then delivery staging.
    pub fn step(&mut self) {
        if self.rounds_run > 0 {
            self.churn
                .step(self.rounds_run - 1, &mut self.online, &mut self.churn_rng);
        }
        let round = self.rounds_run;
        if let Some(trace) = self.trace.as_mut() {
            trace.round_start(round, &self.online);
        }
        let events = self.faults.step(round);
        if let Some(trace) = self.trace.as_mut() {
            trace.fault_events(round, &events);
        }
        let mut staged = std::mem::take(&mut self.staged);
        for i in 0..self.cells.len() {
            let peer = PeerId::new(i as u32);
            if self.faults.is_down(peer) {
                continue; // dead executor: no tick, inbox accumulates
            }
            let online = self.online.is_online(peer);
            let filter = &self.filter;
            self.cells[i].tick(round, online, filter, &mut |to, env| {
                staged.push((to, env));
            });
        }
        for (to, env) in staged.drain(..) {
            self.cells[to.index()].inbox.push_back(env);
        }
        self.staged = staged;
        self.rounds_run += 1;
    }

    /// Runs `n` rounds.
    pub fn run_rounds(&mut self, n: u32) {
        for _ in 0..n {
            self.step();
        }
    }

    /// True when no frame is queued anywhere, no timer is armed and no
    /// node is crashed (a dead node's inbox may hide in-flight frames).
    pub fn is_quiescent(&self) -> bool {
        !self.faults.any_down()
            && self
                .cells
                .iter()
                .all(|c| c.pending_frames() == 0 && c.pending_timers() == 0)
    }

    /// Whether `peer`'s node is aware of `update`.
    pub fn is_aware(&self, peer: PeerId, update: UpdateId) -> bool {
        self.protocol
            .is_aware(&self.cells[peer.index()].node, update)
    }

    /// Every aware replica (offline included), sorted ascending.
    pub fn aware_set(&self, update: UpdateId) -> Vec<PeerId> {
        (0..self.cells.len() as u32)
            .map(PeerId::new)
            .filter(|&p| self.is_aware(p, update))
            .collect()
    }

    /// Whether every effectively-online node is aware (and at least one
    /// node is up).
    pub fn all_online_aware(&self, update: UpdateId) -> bool {
        let mut any = false;
        for i in 0..self.cells.len() as u32 {
            let p = PeerId::new(i);
            if self.effective_online(p) {
                any = true;
                if !self.is_aware(p, update) {
                    return false;
                }
            }
        }
        any
    }

    /// Steps until every online node is aware of `update` (recording the
    /// convergence round) or `max_rounds` elapse. Returns the converged
    /// round if reached.
    pub fn run_until_all_online_aware(&mut self, update: UpdateId, max_rounds: u32) -> Option<u32> {
        if self.probed_update != Some(update) {
            // A fresh update is being tracked: the previous update's
            // convergence round must not leak into this one's report.
            self.probed_update = Some(update);
            self.converged_round = None;
        }
        let start = self.rounds_run;
        while self.rounds_run - start < max_rounds {
            self.step();
            if let Some(mut trace) = self.trace.take() {
                // Virtual time is the only mode where the conductor can
                // see per-node awareness, so only its traces carry
                // `Aware`/`Probe` events (neither is part of the
                // environment sub-trace contract).
                let round = self.rounds_run - 1;
                let online = self.online_count() as u32;
                trace.probe(
                    round,
                    update,
                    (0..self.cells.len() as u32).map(|i| self.is_aware(PeerId::new(i), update)),
                    online,
                );
                self.trace = Some(trace);
            }
            if self.all_online_aware(update) {
                let converged = self.rounds_run - 1;
                self.converged_round.get_or_insert(converged);
                return Some(converged);
            }
        }
        None
    }

    /// Assembles and drains the captured trace into a canonical
    /// [`TraceDoc`] (conductor events plus every cell's buffer), or
    /// `None` when the cluster was not built with
    /// [`ClusterBuilder::traced`](crate::ClusterBuilder::traced). The
    /// cluster may keep running afterwards; a second call returns only
    /// events captured since.
    pub fn take_trace(&mut self, label: &str) -> Option<TraceDoc> {
        let conductor = self.trace.as_mut()?.take();
        let population = self.cells.len() as u32;
        let buffers = std::iter::once(conductor)
            .chain(self.cells.iter_mut().map(NodeCell::take_trace))
            .collect::<Vec<_>>();
        Some(TraceDoc::merge(label, self.seed, population, buffers))
    }

    /// Folds the run into a [`ClusterReport`] for the tracked `update`.
    pub fn report(&self, update: UpdateId) -> ClusterReport {
        let aware_set = self.aware_set(update);
        let aware_online = aware_set
            .iter()
            .filter(|&&p| self.effective_online(p))
            .count();
        ClusterReport::fold(
            crate::report::RunOutcome {
                rounds: self.rounds_run,
                crashes: self.faults.crashes,
                restarts: self.faults.restarts,
                online: self.online_count(),
                aware_online,
                converged_round: self.converged_round,
                aware_set,
                byzantine: self.byzantine.iter().filter(|&&f| f).count(),
            },
            self.cells.iter().map(|c| &c.stats),
        )
    }
}
