//! Trace-driven availability.
//!
//! The paper cites observed replica counts from music file-sharing systems
//! but uses no availability traces; real traces are unavailable to this
//! reproduction, so [`AvailabilityTrace::generate`] synthesises one from
//! any generator model and [`TraceChurn`] replays it. This keeps the
//! "replayable measured environment" code path exercised (see `DESIGN.md`
//! §4) and lets experiments pin an identical churn schedule across
//! protocol variants — the ceteris-paribus comparisons in the harness.

use crate::error::ChurnError;
use crate::online_set::OnlineSet;
use crate::Churn;
use rand_chacha::ChaCha8Rng;
use rumor_types::PeerId;
use serde::{Deserialize, Serialize};

/// A pre-computed availability matrix: `rows = rounds`, `cols = peers`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AvailabilityTrace {
    peers: usize,
    rounds: Vec<Vec<bool>>,
}

impl AvailabilityTrace {
    /// Builds a trace from explicit per-round availability rows.
    ///
    /// # Errors
    ///
    /// Returns [`ChurnError::InvalidTrace`] if the trace is empty or rows
    /// have inconsistent widths.
    pub fn from_rows(rows: Vec<Vec<bool>>) -> Result<Self, ChurnError> {
        let Some(first) = rows.first() else {
            return Err(ChurnError::InvalidTrace {
                reason: "trace has no rounds".into(),
            });
        };
        let peers = first.len();
        if peers == 0 {
            return Err(ChurnError::InvalidTrace {
                reason: "trace has no peers".into(),
            });
        }
        if let Some(bad) = rows.iter().position(|r| r.len() != peers) {
            return Err(ChurnError::InvalidTrace {
                reason: format!("row {bad} has width {} ≠ {peers}", rows[bad].len()),
            });
        }
        Ok(Self {
            peers,
            rounds: rows,
        })
    }

    /// Generates a trace by running a churn model for `rounds` rounds from
    /// the given initial state.
    pub fn generate<C: Churn>(
        initial: &OnlineSet,
        model: &mut C,
        rounds: usize,
        rng: &mut ChaCha8Rng,
    ) -> Self {
        let mut state = initial.clone();
        let mut rows = Vec::with_capacity(rounds.max(1));
        rows.push(
            (0..state.len())
                .map(|i| state.is_online(PeerId::new(i as u32)))
                .collect(),
        );
        // rumor-lint: allow(single-round-loop) -- churn-model replay recording a trace, not protocol orchestration
        for round in 1..rounds {
            model.step(round as u32 - 1, &mut state, rng);
            rows.push(
                (0..state.len())
                    .map(|i| state.is_online(PeerId::new(i as u32)))
                    .collect(),
            );
        }
        Self {
            peers: initial.len(),
            rounds: rows,
        }
    }

    /// Number of peers in the trace.
    pub const fn peers(&self) -> usize {
        self.peers
    }

    /// Number of recorded rounds.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Availability of `peer` at `round` (clamped to the last round once
    /// the trace is exhausted).
    pub fn is_online(&self, round: usize, peer: PeerId) -> bool {
        let row = round.min(self.rounds.len() - 1);
        self.rounds[row][peer.index()]
    }

    /// Mean online fraction over the whole trace.
    pub fn mean_online_fraction(&self) -> f64 {
        let total: usize = self
            .rounds
            .iter()
            .map(|r| r.iter().filter(|&&b| b).count())
            .sum();
        total as f64 / (self.peers * self.rounds.len()) as f64
    }
}

/// Replays an [`AvailabilityTrace`] as a churn model.
///
/// # Examples
///
/// ```
/// use rumor_churn::{AvailabilityTrace, Churn, OnlineSet, TraceChurn};
/// use rand::SeedableRng;
///
/// let trace = AvailabilityTrace::from_rows(vec![
///     vec![true, false],
///     vec![false, true],
/// ])?;
/// let mut churn = TraceChurn::new(trace);
/// let mut online = OnlineSet::all_offline(2);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// churn.step(0, &mut online, &mut rng); // applies round 1 of the trace
/// assert!(online.is_online(rumor_types::PeerId::new(1)));
/// # Ok::<(), rumor_churn::ChurnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceChurn {
    trace: AvailabilityTrace,
}

impl TraceChurn {
    /// Wraps a trace for replay.
    pub fn new(trace: AvailabilityTrace) -> Self {
        Self { trace }
    }

    /// Applies round 0 of the trace to an online set (initial condition).
    pub fn apply_initial(&self, online: &mut OnlineSet) {
        for i in 0..online.len().min(self.trace.peers()) {
            let p = PeerId::new(i as u32);
            online.set_online(p, self.trace.is_online(0, p));
        }
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &AvailabilityTrace {
        &self.trace
    }
}

impl Churn for TraceChurn {
    fn step(&mut self, round: u32, online: &mut OnlineSet, _rng: &mut ChaCha8Rng) {
        // Stepping after round `t` moves the population into trace row `t+1`.
        let row = round as usize + 1;
        for i in 0..online.len().min(self.trace.peers()) {
            let p = PeerId::new(i as u32);
            online.set_online(p, self.trace.is_online(row, p));
        }
    }

    fn stationary_online_fraction(&self) -> Option<f64> {
        Some(self.trace.mean_online_fraction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::MarkovChurn;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_traces() {
        assert!(AvailabilityTrace::from_rows(vec![]).is_err());
        assert!(AvailabilityTrace::from_rows(vec![vec![]]).is_err());
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = AvailabilityTrace::from_rows(vec![vec![true], vec![true, false]]);
        assert!(matches!(err, Err(ChurnError::InvalidTrace { .. })));
    }

    #[test]
    fn replay_is_exact() {
        let rows = vec![vec![true, false, true], vec![false, false, true]];
        let trace = AvailabilityTrace::from_rows(rows).unwrap();
        let mut churn = TraceChurn::new(trace);
        let mut online = OnlineSet::all_offline(3);
        churn.apply_initial(&mut online);
        assert_eq!(online.online_count(), 2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        churn.step(0, &mut online, &mut rng);
        assert_eq!(online.online_count(), 1);
        assert!(online.is_online(PeerId::new(2)));
    }

    #[test]
    fn trace_clamps_past_end() {
        let trace = AvailabilityTrace::from_rows(vec![vec![true]]).unwrap();
        assert!(trace.is_online(99, PeerId::new(0)));
    }

    #[test]
    fn generated_trace_matches_model_statistics() {
        let mut model = MarkovChurn::new(0.9, 0.1).unwrap();
        let initial = OnlineSet::with_online_count(2000, 1000);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let trace = AvailabilityTrace::generate(&initial, &mut model, 100, &mut rng);
        assert_eq!(trace.rounds(), 100);
        assert_eq!(trace.peers(), 2000);
        // Stationary fraction of this chain is 0.5 and we start there.
        let f = trace.mean_online_fraction();
        assert!((f - 0.5).abs() < 0.05, "mean online fraction {f}");
    }

    #[test]
    fn replaying_generated_trace_reproduces_counts() {
        let mut model = MarkovChurn::new(0.8, 0.2).unwrap();
        let initial = OnlineSet::with_online_count(100, 40);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let trace = AvailabilityTrace::generate(&initial, &mut model, 10, &mut rng);

        let mut churn = TraceChurn::new(trace.clone());
        let mut online = OnlineSet::all_offline(100);
        churn.apply_initial(&mut online);
        let mut rng2 = ChaCha8Rng::seed_from_u64(999); // RNG irrelevant for replay
        for round in 0..9u32 {
            churn.step(round, &mut online, &mut rng2);
            let expect = (0..100)
                .filter(|&i| trace.is_online(round as usize + 1, PeerId::new(i)))
                .count();
            assert_eq!(online.online_count(), expect);
        }
    }
}
