//! Non-uniform peer availability — the paper's §8 extension.
//!
//! "Also the effect of non-uniform online probability of peers needs to
//! be explored. In such a scenario a relatively reliable network backbone
//! would exist and thus would make possible further performance
//! improvements." This model assigns each peer an availability *class*
//! (e.g. a small always-on backbone plus a large transient majority) and
//! steps every class with its own Markov parameters.

use crate::error::ChurnError;
use crate::markov::MarkovChurn;
use crate::online_set::OnlineSet;
use crate::Churn;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rumor_types::PeerId;
use serde::{Deserialize, Serialize};

/// Per-class Markov availability over a partitioned population.
///
/// # Examples
///
/// ```
/// use rumor_churn::{Churn, HeterogeneousChurn, MarkovChurn, OnlineSet};
/// use rand::SeedableRng;
///
/// // 10% backbone that never leaves; 90% transient peers at ~20%
/// // availability.
/// let churn = HeterogeneousChurn::backbone(
///     100,
///     0.1,
///     MarkovChurn::new(1.0, 1.0)?,
///     MarkovChurn::new(0.9, 0.025)?,
/// )?;
/// assert_eq!(churn.class_of(rumor_types::PeerId::new(0)), 0, "backbone first");
/// let f = churn.stationary_online_fraction().unwrap();
/// assert!(f > 0.25 && f < 0.35, "weighted availability ≈ 0.28, got {f}");
/// # Ok::<(), rumor_churn::ChurnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeterogeneousChurn {
    classes: Vec<MarkovChurn>,
    class_of: Vec<u8>,
}

impl HeterogeneousChurn {
    /// Creates a model from an explicit per-peer class assignment.
    ///
    /// # Errors
    ///
    /// Returns [`ChurnError::InvalidTrace`] when a peer references a
    /// missing class or no classes are given.
    pub fn new(classes: Vec<MarkovChurn>, class_of: Vec<u8>) -> Result<Self, ChurnError> {
        if classes.is_empty() {
            return Err(ChurnError::InvalidTrace {
                reason: "no availability classes".into(),
            });
        }
        if let Some(bad) = class_of.iter().position(|&c| (c as usize) >= classes.len()) {
            return Err(ChurnError::InvalidTrace {
                reason: format!("peer {bad} references undefined class"),
            });
        }
        Ok(Self { classes, class_of })
    }

    /// Convenience: the §8 scenario — the first `backbone_fraction` of
    /// `population` peers follow `backbone`, the rest follow `transient`.
    ///
    /// # Errors
    ///
    /// Returns an error when `backbone_fraction` is outside `[0, 1]`.
    pub fn backbone(
        population: usize,
        backbone_fraction: f64,
        backbone: MarkovChurn,
        transient: MarkovChurn,
    ) -> Result<Self, ChurnError> {
        if !(0.0..=1.0).contains(&backbone_fraction) {
            return Err(ChurnError::ProbabilityOutOfRange {
                name: "backbone_fraction",
                value: backbone_fraction,
            });
        }
        let cut = (population as f64 * backbone_fraction).round() as usize;
        let class_of = (0..population).map(|i| u8::from(i >= cut)).collect();
        Self::new(vec![backbone, transient], class_of)
    }

    /// The availability class of a peer (peers beyond the assignment
    /// default to class 0).
    pub fn class_of(&self, peer: PeerId) -> u8 {
        self.class_of.get(peer.index()).copied().unwrap_or(0)
    }

    /// The class models.
    pub fn classes(&self) -> &[MarkovChurn] {
        &self.classes
    }
}

impl Churn for HeterogeneousChurn {
    fn step(&mut self, _round: u32, online: &mut OnlineSet, rng: &mut ChaCha8Rng) {
        for i in 0..online.len() {
            let peer = PeerId::new(i as u32);
            let model = &self.classes[self.class_of(peer) as usize];
            if online.is_online(peer) {
                if model.stay_online() < 1.0 && !rng.gen_bool(model.stay_online()) {
                    online.set_online(peer, false);
                }
            } else if model.come_online() > 0.0 && rng.gen_bool(model.come_online()) {
                online.set_online(peer, true);
            }
        }
    }

    fn stationary_online_fraction(&self) -> Option<f64> {
        if self.class_of.is_empty() {
            return None;
        }
        let mut total = 0.0;
        for &c in &self.class_of {
            // A frozen class (σ=1, p_on=1 → stationary 1.0 works out via
            // p_on/(p_on + 0)); classes with no unique stationary point
            // make the blend undefined.
            total += self.classes[c as usize].stationary_online_fraction()?;
        }
        Some(total / self.class_of.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(50)
    }

    #[test]
    fn rejects_bad_assignments() {
        assert!(HeterogeneousChurn::new(vec![], vec![]).is_err());
        let m = MarkovChurn::new(0.9, 0.1).unwrap();
        assert!(HeterogeneousChurn::new(vec![m], vec![0, 1]).is_err());
        assert!(HeterogeneousChurn::backbone(10, 1.5, m, m).is_err());
    }

    #[test]
    fn backbone_peers_stay_online() {
        let mut churn = HeterogeneousChurn::backbone(
            1_000,
            0.1,
            MarkovChurn::new(1.0, 1.0).unwrap(),
            MarkovChurn::new(0.5, 0.0).unwrap(),
        )
        .unwrap();
        let mut online = OnlineSet::all_online(1_000);
        let mut r = rng();
        for round in 0..20 {
            churn.step(round, &mut online, &mut r);
        }
        // All 100 backbone peers still online; transient peers have
        // evaporated (σ = 0.5, no return).
        for i in 0..100 {
            assert!(online.is_online(PeerId::new(i)), "backbone peer {i} left");
        }
        assert!(
            online.online_count() <= 105,
            "transients gone: {}",
            online.online_count()
        );
    }

    #[test]
    fn stationary_fraction_is_class_weighted() {
        let churn = HeterogeneousChurn::backbone(
            100,
            0.5,
            MarkovChurn::new(0.9, 0.1).unwrap(), // stationary 0.5
            MarkovChurn::new(0.8, 0.05).unwrap(), // stationary 0.2
        )
        .unwrap();
        let f = churn.stationary_online_fraction().unwrap();
        assert!((f - 0.35).abs() < 1e-9, "blend of 0.5 and 0.2, got {f}");
    }

    #[test]
    fn degenerate_class_blocks_stationary_blend() {
        let churn = HeterogeneousChurn::backbone(
            10,
            0.5,
            MarkovChurn::new(1.0, 0.0).unwrap(), // frozen: no stationary point
            MarkovChurn::new(0.9, 0.1).unwrap(),
        )
        .unwrap();
        assert!(churn.stationary_online_fraction().is_none());
    }

    #[test]
    fn population_converges_to_blend() {
        let mut churn = HeterogeneousChurn::backbone(
            4_000,
            0.25,
            MarkovChurn::new(0.99, 0.5).unwrap(), // ≈ 0.98 available
            MarkovChurn::new(0.9, 0.0112).unwrap(), // ≈ 0.1 available
        )
        .unwrap();
        let target = churn.stationary_online_fraction().unwrap();
        let mut online = OnlineSet::all_offline(4_000);
        let mut r = rng();
        for round in 0..400 {
            churn.step(round, &mut online, &mut r);
        }
        let got = online.online_fraction();
        assert!((got - target).abs() < 0.03, "got {got}, want ≈ {target}");
    }
}
