//! Error type for churn model construction.

use std::error::Error;
use std::fmt;

/// Error returned when a churn model is configured with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnError {
    /// A probability parameter was outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Which parameter was invalid.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A duration parameter was not strictly positive.
    NonPositiveDuration {
        /// Which parameter was invalid.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A trace was empty or shaped inconsistently with the population.
    InvalidTrace {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ChurnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ProbabilityOutOfRange { name, value } => {
                write!(f, "probability `{name}` must be in [0, 1], got {value}")
            }
            Self::NonPositiveDuration { name, value } => {
                write!(f, "duration `{name}` must be positive, got {value}")
            }
            Self::InvalidTrace { reason } => write!(f, "invalid availability trace: {reason}"),
        }
    }
}

impl Error for ChurnError {}

pub(crate) fn check_probability(name: &'static str, value: f64) -> Result<f64, ChurnError> {
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(ChurnError::ProbabilityOutOfRange { name, value })
    }
}

pub(crate) fn check_positive(name: &'static str, value: f64) -> Result<f64, ChurnError> {
    if value > 0.0 && value.is_finite() {
        Ok(value)
    } else {
        Err(ChurnError::NonPositiveDuration { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_bounds() {
        assert!(check_probability("p", 0.0).is_ok());
        assert!(check_probability("p", 1.0).is_ok());
        assert!(check_probability("p", -0.1).is_err());
        assert!(check_probability("p", 1.1).is_err());
        assert!(check_probability("p", f64::NAN).is_err());
    }

    #[test]
    fn positive_bounds() {
        assert!(check_positive("d", 1.0).is_ok());
        assert!(check_positive("d", 0.0).is_err());
        assert!(check_positive("d", f64::INFINITY).is_err());
    }

    #[test]
    fn display_mentions_parameter() {
        let e = ChurnError::ProbabilityOutOfRange {
            name: "sigma",
            value: 2.0,
        };
        assert!(e.to_string().contains("sigma"));
    }
}
