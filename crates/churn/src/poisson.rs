//! Poisson sampling, used for workload arrivals and the §5.6 analysis.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Samples a Poisson random variate with the given mean.
///
/// Uses Knuth's product method for small means and a normal approximation
/// above 30 (error well under the stochastic noise of the experiments it
/// feeds). The paper's §5.6 assumes "peers stay online according to a
/// Poisson process"; workload generators also use this for update arrivals.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let x = rumor_churn::sample_poisson(4.0, &mut rng);
/// assert!(x < 100);
/// ```
///
/// # Panics
///
/// Panics if `mean` is negative or not finite.
pub fn sample_poisson(mean: f64, rng: &mut ChaCha8Rng) -> u64 {
    assert!(mean >= 0.0 && mean.is_finite(), "mean must be finite ≥ 0");
    if mean == 0.0 {
        return 0;
    }
    if mean > 30.0 {
        // Normal approximation with continuity correction.
        let z = sample_standard_normal(rng);
        let v = mean + z * mean.sqrt() + 0.5;
        return v.max(0.0) as u64;
    }
    let limit = (-mean).exp();
    let mut k: u64 = 0;
    let mut product: f64 = 1.0;
    loop {
        product *= rng.gen_range(0.0f64..1.0);
        if product <= limit {
            return k;
        }
        k += 1;
    }
}

fn sample_standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    // Box–Muller transform.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0f64..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(21)
    }

    #[test]
    fn zero_mean_is_zero() {
        assert_eq!(sample_poisson(0.0, &mut rng()), 0);
    }

    #[test]
    fn small_mean_statistics() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<u64> = (0..n).map(|_| sample_poisson(3.0, &mut r)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 3.0).abs() < 0.15, "variance {var} (Poisson: = mean)");
    }

    #[test]
    fn large_mean_statistics() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| sample_poisson(100.0, &mut r)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_mean() {
        let _ = sample_poisson(-1.0, &mut rng());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = sample_poisson(5.0, &mut ChaCha8Rng::seed_from_u64(9));
        let b = sample_poisson(5.0, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
