//! The paper's per-round availability chain.

use crate::error::{check_probability, ChurnError};
use crate::online_set::OnlineSet;
use crate::Churn;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Two-state Markov availability: each round an online peer stays online
/// with probability `σ` (the paper's `sigma = 1 − p_f`) and an offline
/// peer comes online with probability `p_on` (the paper's `p_s`).
///
/// §4.1 notes both probabilities "are typically small and may vary in
/// different push rounds" and that the analysis neglects peers coming
/// online during a push ("peers coming online need to execute pull any
/// way"); set `come_online` to `0.0` to reproduce the analysis setting
/// exactly.
///
/// # Examples
///
/// ```
/// use rumor_churn::{Churn, MarkovChurn, OnlineSet};
/// use rand::SeedableRng;
///
/// let mut churn = MarkovChurn::new(0.9, 0.1)?;
/// assert!((churn.stationary_online_fraction().unwrap() - 0.5).abs() < 1e-12);
///
/// let mut online = OnlineSet::with_online_count(100, 50);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// churn.step(0, &mut online, &mut rng);
/// # Ok::<(), rumor_churn::ChurnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkovChurn {
    stay_online: f64,
    come_online: f64,
}

impl MarkovChurn {
    /// Creates the chain from `σ` (stay-online) and `p_on` (come-online).
    ///
    /// # Errors
    ///
    /// Returns [`ChurnError::ProbabilityOutOfRange`] if either probability
    /// is outside `[0, 1]`.
    pub fn new(stay_online: f64, come_online: f64) -> Result<Self, ChurnError> {
        Ok(Self {
            stay_online: check_probability("stay_online", stay_online)?,
            come_online: check_probability("come_online", come_online)?,
        })
    }

    /// The paper's `σ`.
    pub const fn stay_online(&self) -> f64 {
        self.stay_online
    }

    /// The paper's `p_on` (probability an offline peer comes online).
    pub const fn come_online(&self) -> f64 {
        self.come_online
    }
}

impl Churn for MarkovChurn {
    fn step(&mut self, _round: u32, online: &mut OnlineSet, rng: &mut ChaCha8Rng) {
        for i in 0..online.len() {
            let peer = rumor_types::PeerId::new(i as u32);
            if online.is_online(peer) {
                if self.stay_online < 1.0 && !rng.gen_bool(self.stay_online) {
                    online.set_online(peer, false);
                }
            } else if self.come_online > 0.0 && rng.gen_bool(self.come_online) {
                online.set_online(peer, true);
            }
        }
    }

    fn stationary_online_fraction(&self) -> Option<f64> {
        let leave = 1.0 - self.stay_online;
        let denom = leave + self.come_online;
        if denom == 0.0 {
            // σ = 1 and p_on = 0: the chain never moves, so the initial
            // condition persists and there is no unique stationary point.
            None
        } else {
            Some(self.come_online / denom)
        }
    }
}

/// A frozen population: nobody changes availability.
///
/// Useful for isolating protocol behaviour (`σ = 1`, Fig. 5 setting) and
/// for the fully-online Table 2 setting A.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticChurn;

impl StaticChurn {
    /// Creates the no-op churn model.
    pub const fn new() -> Self {
        Self
    }
}

impl Churn for StaticChurn {
    fn step(&mut self, _round: u32, _online: &mut OnlineSet, _rng: &mut ChaCha8Rng) {}

    fn stationary_online_fraction(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_bad_probabilities() {
        assert!(MarkovChurn::new(1.5, 0.0).is_err());
        assert!(MarkovChurn::new(0.5, -0.1).is_err());
    }

    #[test]
    fn sigma_one_keeps_everyone_online() {
        let mut churn = MarkovChurn::new(1.0, 0.0).unwrap();
        let mut online = OnlineSet::all_online(500);
        let mut r = rng(1);
        for round in 0..20 {
            churn.step(round, &mut online, &mut r);
        }
        assert_eq!(online.online_count(), 500);
    }

    #[test]
    fn sigma_zero_empties_population() {
        let mut churn = MarkovChurn::new(0.0, 0.0).unwrap();
        let mut online = OnlineSet::all_online(100);
        churn.step(0, &mut online, &mut rng(2));
        assert_eq!(online.online_count(), 0);
    }

    #[test]
    fn online_decay_tracks_sigma() {
        // With p_on = 0, E[R_on(t)] = R_on(0) σ^t (paper §4.1).
        let sigma = 0.9;
        let mut churn = MarkovChurn::new(sigma, 0.0).unwrap();
        let mut online = OnlineSet::all_online(20_000);
        let mut r = rng(3);
        for round in 0..5 {
            churn.step(round, &mut online, &mut r);
        }
        let expected = 20_000.0 * sigma.powi(5);
        let got = online.online_count() as f64;
        assert!(
            (got - expected).abs() / expected < 0.05,
            "expected ≈ {expected}, got {got}"
        );
    }

    #[test]
    fn stationary_fraction_reached() {
        let mut churn = MarkovChurn::new(0.95, 0.05).unwrap();
        let target = churn.stationary_online_fraction().unwrap();
        assert!((target - 0.5).abs() < 1e-12);
        let mut online = OnlineSet::all_offline(20_000);
        let mut r = rng(4);
        for round in 0..200 {
            churn.step(round, &mut online, &mut r);
        }
        assert!(
            (online.online_fraction() - target).abs() < 0.03,
            "fraction {} far from stationary {target}",
            online.online_fraction()
        );
    }

    #[test]
    fn degenerate_chain_has_no_stationary_point() {
        let churn = MarkovChurn::new(1.0, 0.0).unwrap();
        assert!(churn.stationary_online_fraction().is_none());
    }

    #[test]
    fn static_churn_never_changes_anything() {
        let mut churn = StaticChurn::new();
        let mut online = OnlineSet::with_online_count(10, 4);
        let before = online.clone();
        churn.step(0, &mut online, &mut rng(5));
        assert_eq!(online, before);
        assert!(churn.stationary_online_fraction().is_none());
    }

    #[test]
    fn paper_online_range_10_to_30_percent() {
        // Parameters chosen for the paper's 10%–30% expected availability
        // must produce stationary fractions in that band.
        for (sigma, p_on, lo, hi) in [(0.95, 0.00556, 0.09, 0.11), (0.9, 0.0429, 0.28, 0.32)] {
            let churn = MarkovChurn::new(sigma, p_on).unwrap();
            let s = churn.stationary_online_fraction().unwrap();
            assert!((lo..=hi).contains(&s), "σ={sigma} p_on={p_on} gave {s}");
        }
    }
}
