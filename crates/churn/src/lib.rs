//! Peer availability (churn) substrate.
//!
//! The paper's environment is defined by replicas that are offline most of
//! the time: "availability of the peers to be a random process with expected
//! value of being online between 10% to 30%" (§4.1), with `σ` the
//! probability that an online peer stays online across one push round and
//! `p_on` the probability that an offline peer comes online. This crate
//! provides that random process in several interchangeable forms:
//!
//! * [`MarkovChurn`] — the two-state per-round chain used throughout the
//!   paper's analysis (σ, `p_on`).
//! * [`StaticChurn`] — no transitions; isolates protocol behaviour.
//! * [`OnOffProcess`] — continuous-time on/off dwell times for the
//!   event-driven engine.
//! * [`TraceChurn`] — replay of a pre-generated availability trace
//!   (synthetic stand-in for real traces, per `DESIGN.md` §4).
//! * [`HeterogeneousChurn`] — §8's non-uniform availability: a reliable
//!   backbone class mixed with transient peers.
//! * [`Catastrophe`] — failure injection: mass offline events at scheduled
//!   rounds layered over any base model.
//!
//! # Examples
//!
//! ```
//! use rumor_churn::{Churn, MarkovChurn, OnlineSet};
//! use rand::SeedableRng;
//!
//! let mut online = OnlineSet::with_online_count(1000, 100);
//! let mut churn = MarkovChurn::new(0.95, 0.0).expect("valid probabilities");
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! churn.step(0, &mut online, &mut rng);
//! assert!(online.online_count() <= 100, "nobody comes online with p_on = 0");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catastrophe;
mod error;
mod heterogeneous;
mod markov;
mod online_set;
mod onoff;
mod poisson;
mod trace;

pub use catastrophe::Catastrophe;
pub use error::ChurnError;
pub use heterogeneous::HeterogeneousChurn;
pub use markov::{MarkovChurn, StaticChurn};
pub use online_set::OnlineSet;
pub use onoff::OnOffProcess;
pub use poisson::sample_poisson;
pub use trace::{AvailabilityTrace, TraceChurn};

use rand_chacha::ChaCha8Rng;

/// A per-round availability process.
///
/// Implementations mutate the [`OnlineSet`] in place once per push round.
/// The simulator calls [`Churn::step`] *between* rounds, matching the
/// paper's synchronous model where `σ` acts once per round.
pub trait Churn {
    /// Advances the population by one round, toggling peers on/offline.
    fn step(&mut self, round: u32, online: &mut OnlineSet, rng: &mut ChaCha8Rng);

    /// The long-run expected online fraction, if the model has one.
    ///
    /// Markov churn with `σ` and `p_on` has stationary online probability
    /// `p_on / (p_on + 1 − σ)`; trace or catastrophe models may not have a
    /// meaningful stationary value and return `None`.
    fn stationary_online_fraction(&self) -> Option<f64> {
        None
    }
}
