//! The set of currently-online replicas (`R_on` in the paper).

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rumor_types::PeerId;
use serde::{Deserialize, Serialize};

/// Dense online/offline state for a replica population.
///
/// Maintains the online count incrementally so that `R_on(t)` — the
/// quantity every formula in the paper's analysis is normalised by — is
/// available in O(1).
///
/// # Examples
///
/// ```
/// use rumor_churn::OnlineSet;
/// use rumor_types::PeerId;
///
/// let mut set = OnlineSet::with_online_count(10, 3);
/// assert_eq!(set.online_count(), 3);
/// set.set_online(PeerId::new(9), true);
/// assert!(set.online_count() >= 3);
/// assert_eq!(set.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineSet {
    online: Vec<bool>,
    online_count: usize,
}

impl OnlineSet {
    /// Creates a population of `n` peers, all offline.
    pub fn all_offline(n: usize) -> Self {
        Self {
            online: vec![false; n],
            online_count: 0,
        }
    }

    /// Creates a population of `n` peers, all online.
    pub fn all_online(n: usize) -> Self {
        Self {
            online: vec![true; n],
            online_count: n,
        }
    }

    /// Creates a population with exactly the first `k` peers online.
    ///
    /// Which peers start online is immaterial to the protocol (peers are
    /// exchangeable); taking a prefix keeps construction deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn with_online_count(n: usize, k: usize) -> Self {
        assert!(k <= n, "cannot have more online peers than peers");
        let mut online = vec![false; n];
        for slot in online.iter_mut().take(k) {
            *slot = true;
        }
        Self {
            online,
            online_count: k,
        }
    }

    /// Creates a population where each peer is online independently with
    /// probability `p`.
    pub fn with_online_probability(n: usize, p: f64, rng: &mut ChaCha8Rng) -> Self {
        let mut set = Self::all_offline(n);
        for i in 0..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                set.set_online(PeerId::new(i as u32), true);
            }
        }
        set
    }

    /// Total population size (the paper's `R`).
    pub fn len(&self) -> usize {
        self.online.len()
    }

    /// True when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.online.is_empty()
    }

    /// Number of online peers (the paper's `R_on`).
    pub const fn online_count(&self) -> usize {
        self.online_count
    }

    /// Online fraction `R_on / R`.
    pub fn online_fraction(&self) -> f64 {
        if self.online.is_empty() {
            0.0
        } else {
            self.online_count as f64 / self.online.len() as f64
        }
    }

    /// Whether the given peer is online.
    ///
    /// # Panics
    ///
    /// Panics if the peer is outside the population.
    pub fn is_online(&self, peer: PeerId) -> bool {
        self.online[peer.index()]
    }

    /// Sets a peer's availability; returns `true` if the state changed.
    ///
    /// # Panics
    ///
    /// Panics if the peer is outside the population.
    pub fn set_online(&mut self, peer: PeerId, online: bool) -> bool {
        let slot = &mut self.online[peer.index()];
        if *slot == online {
            return false;
        }
        *slot = online;
        if online {
            self.online_count += 1;
        } else {
            self.online_count -= 1;
        }
        true
    }

    /// Iterates over the online peers in index order.
    pub fn iter_online(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.online
            .iter()
            .enumerate()
            .filter(|(_, &on)| on)
            .map(|(i, _)| PeerId::new(i as u32))
    }

    /// Iterates over every peer with its availability.
    pub fn iter(&self) -> impl Iterator<Item = (PeerId, bool)> + '_ {
        self.online
            .iter()
            .enumerate()
            .map(|(i, &on)| (PeerId::new(i as u32), on))
    }

    /// Samples one online peer uniformly, or `None` if all are offline.
    pub fn sample_online(&self, rng: &mut ChaCha8Rng) -> Option<PeerId> {
        if self.online_count == 0 {
            return None;
        }
        // Rejection sampling is O(R / R_on) expected — fine for the online
        // fractions the paper considers (≥1%); fall back to a scan for
        // pathological sparsity.
        for _ in 0..64 {
            let i = rng.gen_range(0..self.online.len());
            if self.online[i] {
                return Some(PeerId::new(i as u32));
            }
        }
        let online: Vec<PeerId> = self.iter_online().collect();
        online.choose(rng).copied()
    }

    /// Takes every peer offline (used by catastrophe injection).
    pub fn clear(&mut self) {
        self.online.iter_mut().for_each(|b| *b = false);
        self.online_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn constructors_set_counts() {
        assert_eq!(OnlineSet::all_offline(5).online_count(), 0);
        assert_eq!(OnlineSet::all_online(5).online_count(), 5);
        assert_eq!(OnlineSet::with_online_count(5, 2).online_count(), 2);
    }

    #[test]
    fn probability_constructor_is_close_to_p() {
        let set = OnlineSet::with_online_probability(10_000, 0.2, &mut rng());
        let frac = set.online_fraction();
        assert!((frac - 0.2).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn set_online_maintains_count() {
        let mut s = OnlineSet::all_offline(3);
        assert!(s.set_online(PeerId::new(1), true));
        assert!(!s.set_online(PeerId::new(1), true), "no-op change");
        assert_eq!(s.online_count(), 1);
        assert!(s.set_online(PeerId::new(1), false));
        assert_eq!(s.online_count(), 0);
    }

    #[test]
    fn iter_online_matches_count() {
        let s = OnlineSet::with_online_count(10, 4);
        assert_eq!(s.iter_online().count(), 4);
        assert!(s.iter_online().all(|p| p.index() < 4));
    }

    #[test]
    fn sample_online_returns_online_peer() {
        let s = OnlineSet::with_online_count(100, 10);
        let mut r = rng();
        for _ in 0..50 {
            let p = s.sample_online(&mut r).expect("some peer online");
            assert!(s.is_online(p));
        }
    }

    #[test]
    fn sample_online_empty_is_none() {
        let s = OnlineSet::all_offline(10);
        assert!(s.sample_online(&mut rng()).is_none());
    }

    #[test]
    fn sample_online_sparse_falls_back_to_scan() {
        let mut s = OnlineSet::all_offline(100_000);
        s.set_online(PeerId::new(99_999), true);
        let p = s.sample_online(&mut rng()).expect("one online");
        assert_eq!(p, PeerId::new(99_999));
    }

    #[test]
    fn clear_empties() {
        let mut s = OnlineSet::all_online(4);
        s.clear();
        assert_eq!(s.online_count(), 0);
        assert_eq!(s.online_fraction(), 0.0);
    }

    #[test]
    fn fraction_of_empty_population_is_zero() {
        assert_eq!(OnlineSet::all_offline(0).online_fraction(), 0.0);
    }
}
