//! Continuous-time on/off availability for the event-driven engine.

use crate::error::{check_positive, ChurnError};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A per-peer alternating renewal process with exponentially distributed
/// online and offline dwell times.
///
/// The synchronous analysis abstracts availability into per-round
/// probabilities; the event-driven engine needs actual session lengths.
/// Exponential dwells make the embedded per-round chain exactly the
/// paper's Markov model (memorylessness), so the two engines are
/// statistically consistent.
///
/// # Examples
///
/// ```
/// use rumor_churn::OnOffProcess;
/// use rand::SeedableRng;
///
/// let p = OnOffProcess::new(10.0, 90.0)?; // 10% expected availability
/// assert!((p.expected_online_fraction() - 0.1).abs() < 1e-12);
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let dwell = p.sample_online_dwell(&mut rng);
/// assert!(dwell > 0.0);
/// # Ok::<(), rumor_churn::ChurnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnOffProcess {
    mean_online: f64,
    mean_offline: f64,
}

impl OnOffProcess {
    /// Creates a process with the given mean online/offline session
    /// lengths (in ticks).
    ///
    /// # Errors
    ///
    /// Returns [`ChurnError::NonPositiveDuration`] if either mean is not
    /// strictly positive and finite.
    pub fn new(mean_online: f64, mean_offline: f64) -> Result<Self, ChurnError> {
        Ok(Self {
            mean_online: check_positive("mean_online", mean_online)?,
            mean_offline: check_positive("mean_offline", mean_offline)?,
        })
    }

    /// Builds a process with a target availability and mean online session
    /// length: `mean_offline` is derived.
    ///
    /// # Errors
    ///
    /// Returns an error when `availability` is not in `(0, 1)` or
    /// `mean_online` is not positive.
    pub fn with_availability(availability: f64, mean_online: f64) -> Result<Self, ChurnError> {
        if !(availability > 0.0 && availability < 1.0) {
            return Err(ChurnError::ProbabilityOutOfRange {
                name: "availability",
                value: availability,
            });
        }
        let mean_online = check_positive("mean_online", mean_online)?;
        let mean_offline = mean_online * (1.0 - availability) / availability;
        Self::new(mean_online, mean_offline)
    }

    /// Long-run fraction of time spent online.
    pub fn expected_online_fraction(&self) -> f64 {
        self.mean_online / (self.mean_online + self.mean_offline)
    }

    /// Samples the length of one online session.
    pub fn sample_online_dwell(&self, rng: &mut ChaCha8Rng) -> f64 {
        sample_exponential(self.mean_online, rng)
    }

    /// Samples the length of one offline period.
    pub fn sample_offline_dwell(&self, rng: &mut ChaCha8Rng) -> f64 {
        sample_exponential(self.mean_offline, rng)
    }

    /// Probability that a peer online now is still online `dt` ticks later
    /// without interruption — the continuous analogue of the paper's `σ`.
    pub fn survival_probability(&self, dt: f64) -> f64 {
        (-dt / self.mean_online).exp()
    }
}

fn sample_exponential(mean: f64, rng: &mut ChaCha8Rng) -> f64 {
    // Inverse CDF; guard the log away from 0 so dwells are finite.
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn rejects_non_positive_means() {
        assert!(OnOffProcess::new(0.0, 1.0).is_err());
        assert!(OnOffProcess::new(1.0, -1.0).is_err());
    }

    #[test]
    fn availability_constructor_hits_target() {
        let p = OnOffProcess::with_availability(0.3, 30.0).unwrap();
        assert!((p.expected_online_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn availability_constructor_rejects_extremes() {
        assert!(OnOffProcess::with_availability(0.0, 1.0).is_err());
        assert!(OnOffProcess::with_availability(1.0, 1.0).is_err());
    }

    #[test]
    fn dwell_means_converge() {
        let p = OnOffProcess::new(10.0, 40.0).unwrap();
        let mut r = rng();
        let n = 20_000;
        let mean_on: f64 = (0..n).map(|_| p.sample_online_dwell(&mut r)).sum::<f64>() / n as f64;
        let mean_off: f64 = (0..n).map(|_| p.sample_offline_dwell(&mut r)).sum::<f64>() / n as f64;
        assert!((mean_on - 10.0).abs() < 0.5, "online mean {mean_on}");
        assert!((mean_off - 40.0).abs() < 2.0, "offline mean {mean_off}");
    }

    #[test]
    fn survival_matches_exponential() {
        let p = OnOffProcess::new(10.0, 10.0).unwrap();
        assert!((p.survival_probability(0.0) - 1.0).abs() < 1e-12);
        assert!((p.survival_probability(10.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert!(p.survival_probability(100.0) < 1e-4);
    }

    #[test]
    fn dwells_are_positive() {
        let p = OnOffProcess::new(1.0, 1.0).unwrap();
        let mut r = rng();
        for _ in 0..1000 {
            assert!(p.sample_online_dwell(&mut r) > 0.0);
        }
    }
}
