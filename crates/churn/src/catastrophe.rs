//! Failure injection: scheduled mass-offline events.
//!
//! §4.1 justifies a small per-round offline probability "unless there is
//! any kind of catastrophic failure". This wrapper makes that exception
//! testable: it layers scheduled catastrophes over any base churn model so
//! experiments can measure how the pull phase repairs a push that was
//! interrupted mid-flight.

use crate::online_set::OnlineSet;
use crate::Churn;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rumor_types::PeerId;
use serde::{Deserialize, Serialize};

/// A scheduled availability catastrophe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CatastropheEvent {
    /// Round *after* which the catastrophe strikes.
    pub round: u32,
    /// Fraction of currently-online peers knocked offline (`1.0` = all).
    pub kill_fraction: f64,
}

/// Wraps a base churn model and injects catastrophes at scheduled rounds.
///
/// # Examples
///
/// ```
/// use rumor_churn::{Catastrophe, Churn, OnlineSet, StaticChurn};
/// use rand::SeedableRng;
///
/// let mut churn = Catastrophe::new(StaticChurn::new())
///     .with_event(2, 1.0); // after round 2, everyone offline
/// let mut online = OnlineSet::all_online(50);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// churn.step(0, &mut online, &mut rng);
/// churn.step(1, &mut online, &mut rng);
/// assert_eq!(online.online_count(), 50);
/// churn.step(2, &mut online, &mut rng);
/// assert_eq!(online.online_count(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catastrophe<C> {
    base: C,
    events: Vec<CatastropheEvent>,
}

impl<C: Churn> Catastrophe<C> {
    /// Wraps a base model with no scheduled events.
    pub fn new(base: C) -> Self {
        Self {
            base,
            events: Vec::new(),
        }
    }

    /// Schedules a catastrophe after `round` killing `kill_fraction` of the
    /// online population (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_event(mut self, round: u32, kill_fraction: f64) -> Self {
        self.events.push(CatastropheEvent {
            round,
            kill_fraction: kill_fraction.clamp(0.0, 1.0),
        });
        self
    }

    /// The scheduled events.
    pub fn events(&self) -> &[CatastropheEvent] {
        &self.events
    }

    /// Access to the wrapped model.
    pub fn base(&self) -> &C {
        &self.base
    }
}

impl<C: Churn> Churn for Catastrophe<C> {
    fn step(&mut self, round: u32, online: &mut OnlineSet, rng: &mut ChaCha8Rng) {
        self.base.step(round, online, rng);
        for ev in &self.events {
            if ev.round == round {
                if ev.kill_fraction >= 1.0 {
                    online.clear();
                    continue;
                }
                let victims: Vec<PeerId> = online
                    .iter_online()
                    .filter(|_| rng.gen_bool(ev.kill_fraction))
                    .collect();
                for v in victims {
                    online.set_online(v, false);
                }
            }
        }
    }

    fn stationary_online_fraction(&self) -> Option<f64> {
        self.base.stationary_online_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::{MarkovChurn, StaticChurn};
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(3)
    }

    #[test]
    fn no_events_is_transparent() {
        let mut c = Catastrophe::new(StaticChurn::new());
        let mut online = OnlineSet::all_online(10);
        c.step(0, &mut online, &mut rng());
        assert_eq!(online.online_count(), 10);
    }

    #[test]
    fn total_catastrophe_clears_population() {
        let mut c = Catastrophe::new(StaticChurn::new()).with_event(1, 1.0);
        let mut online = OnlineSet::all_online(10);
        c.step(0, &mut online, &mut rng());
        assert_eq!(online.online_count(), 10);
        c.step(1, &mut online, &mut rng());
        assert_eq!(online.online_count(), 0);
    }

    #[test]
    fn partial_catastrophe_kills_about_fraction() {
        let mut c = Catastrophe::new(StaticChurn::new()).with_event(0, 0.5);
        let mut online = OnlineSet::all_online(10_000);
        c.step(0, &mut online, &mut rng());
        let remaining = online.online_count();
        assert!(
            (4_500..=5_500).contains(&remaining),
            "≈half should remain, got {remaining}"
        );
    }

    #[test]
    fn kill_fraction_is_clamped() {
        let c = Catastrophe::new(StaticChurn::new()).with_event(0, 7.0);
        assert_eq!(c.events()[0].kill_fraction, 1.0);
    }

    #[test]
    fn base_model_still_applies() {
        let base = MarkovChurn::new(0.0, 0.0).unwrap(); // everyone leaves every round
        let mut c = Catastrophe::new(base).with_event(5, 1.0);
        let mut online = OnlineSet::all_online(100);
        c.step(0, &mut online, &mut rng());
        assert_eq!(online.online_count(), 0, "base churn emptied population");
        assert_eq!(
            c.stationary_online_fraction(),
            Some(0.0),
            "stationary fraction delegates to base"
        );
    }
}
