//! The typed simulation facade over the generic driver.

use crate::driver::{Driver, PaperProtocol};
use crate::report::{PushReport, SimReport, WorkloadReport};
use crate::workload::UpdateEvent;
use rumor_churn::OnlineSet;
use rumor_core::{QueryAnswer, QueryPolicy, ReplicaPeer, Update, Value};
use rumor_metrics::{CounterSet, RoundSeries};
use rumor_types::{DataKey, PeerId, Round, UpdateId};

/// A population of [`ReplicaPeer`]s driven in synchronous rounds under
/// churn — built via [`SimulationBuilder`](crate::SimulationBuilder) or
/// [`Scenario::simulation`](crate::Scenario::simulation).
///
/// This is a thin typed wrapper over [`Driver`]`<ReplicaPeer>`: the round
/// loop, churn orchestration and awareness tracking live in the generic
/// driver shared with every baseline protocol; this type adds the
/// [`ReplicaPeer`]-specific conveniences (queries, typed reports, store
/// access).
pub struct Simulation {
    driver: Driver<ReplicaPeer>,
    protocol: PaperProtocol,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("population", &self.driver.population())
            .field("online", &self.driver.online().online_count())
            .field("rounds_run", &self.driver.rounds_run())
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Wraps a mounted paper-protocol driver (used by
    /// [`Scenario::simulation`](crate::Scenario::simulation) and
    /// [`SimulationBuilder`](crate::SimulationBuilder)).
    pub fn from_parts(driver: Driver<ReplicaPeer>, protocol: PaperProtocol) -> Self {
        Self { driver, protocol }
    }

    /// The underlying protocol-agnostic driver.
    pub fn driver(&self) -> &Driver<ReplicaPeer> {
        &self.driver
    }

    /// Mutable access to the underlying driver.
    pub fn driver_mut(&mut self) -> &mut Driver<ReplicaPeer> {
        &mut self.driver
    }

    /// Total population size `R`.
    pub fn population(&self) -> usize {
        self.driver.population()
    }

    /// The current availability state.
    pub fn online(&self) -> &OnlineSet {
        self.driver.online()
    }

    /// Read access to one peer.
    ///
    /// # Panics
    ///
    /// Panics if the peer is outside the population.
    pub fn peer(&self, id: PeerId) -> &ReplicaPeer {
        self.driver.node(id)
    }

    /// All peers, for whole-population assertions.
    pub fn peers(&self) -> &[ReplicaPeer] {
        self.driver.nodes()
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> u32 {
        self.driver.rounds_run()
    }

    /// The number of peers online when the simulation started (`R_on(0)`).
    pub fn initial_online(&self) -> usize {
        self.driver.initial_online()
    }

    /// Initiates an update at `initiator` (or a random online peer) and
    /// injects its round-0 pushes. Returns the update.
    ///
    /// # Panics
    ///
    /// Panics if nobody is online to initiate.
    pub fn initiate_update(
        &mut self,
        initiator: Option<PeerId>,
        key: DataKey,
        value: Option<Value>,
    ) -> Update {
        let id = initiator
            .or_else(|| self.driver.sample_online())
            .expect("an online initiator is required");
        let round = Round::new(self.driver.rounds_run());
        self.driver.apply(id, |peer, rng, out| {
            peer.initiate_update(key, value, round, rng, out)
        })
    }

    /// Executes one synchronous round: churn transition (after round 0),
    /// then the engine round.
    pub fn step(&mut self) {
        self.driver.step();
    }

    /// Runs `n` rounds.
    pub fn run_rounds(&mut self, n: u32) {
        self.driver.run_rounds(n);
    }

    /// Runs until the engine is quiescent (no message in flight, no timer
    /// pending) or `max_rounds` have elapsed; returns rounds executed.
    pub fn run_until_quiescent(&mut self, max_rounds: u32) -> u32 {
        self.driver.run_until_quiescent(max_rounds)
    }

    /// Convenience: initiate a write and drive the push to quiescence,
    /// collecting the per-round trace. This is the figure-reproduction
    /// workhorse.
    pub fn propagate(&mut self, key: DataKey, value: &str, max_rounds: u32) -> PushReport {
        let update = self.initiate_update(None, key, Some(Value::from(value)));
        self.track_update(update.id(), max_rounds)
    }

    /// Drives rounds until the push for `update` quiesces (or awareness
    /// stalls per the scenario's convergence criterion), recording
    /// per-round observations.
    pub fn track_update(&mut self, update: UpdateId, max_rounds: u32) -> PushReport {
        let run = self.driver.track_update(&self.protocol, update, max_rounds);
        PushReport {
            rounds: run.rounds,
            aware_online_fraction: run.aware_online_fraction,
            aware_total_fraction: run.aware_total_fraction,
            push_messages: run.protocol_messages,
            total_messages: run.total_messages,
            duplicates: self
                .driver
                .nodes()
                .iter()
                .map(|p| p.stats().duplicates_received)
                .sum(),
            wasted: run.total_wasted,
            initial_online: run.initial_online,
            per_round: run.per_round,
        }
    }

    /// Executes a scheduled update workload (writes **and** tombstones)
    /// with per-update awareness tracking — see
    /// [`Driver::run_workload`].
    pub fn run_workload(&mut self, events: &[UpdateEvent], settle_rounds: u32) -> WorkloadReport {
        self.driver
            .run_workload(&self.protocol, events, settle_rounds)
    }

    /// Issues a query the way a client would (§4.4): collect local
    /// answers from up to `attempts` *distinct* random online replicas
    /// and resolve them under `policy`.
    ///
    /// When `attempts` meets or exceeds the online population, every
    /// online replica answers exactly once.
    pub fn query(
        &mut self,
        key: DataKey,
        attempts: usize,
        policy: QueryPolicy,
    ) -> Option<QueryAnswer> {
        let sampled = self.driver.sample_online_distinct(attempts);
        let answers: Vec<QueryAnswer> = sampled
            .into_iter()
            .map(|p| self.driver.node(p).answer_query(key))
            .collect();
        policy.resolve(&answers)
    }

    /// Aggregate report over everything run so far.
    pub fn report(&self) -> SimReport {
        let stats = self.driver.stats();
        let mut engine = CounterSet::new();
        engine.add("sent", stats.sent);
        engine.add("delivered", stats.delivered);
        engine.add("lost_offline", stats.lost_offline);
        engine.add("lost_fault", stats.lost_fault);

        let mut peers = CounterSet::new();
        for p in self.driver.nodes() {
            let s = p.stats();
            peers.add("pushes_received", s.pushes_received);
            peers.add("duplicates_received", s.duplicates_received);
            peers.add("pushes_forwarded", s.pushes_forwarded);
            peers.add("forwards_suppressed", s.forwards_suppressed);
            peers.add("push_messages_sent", s.push_messages_sent);
            peers.add("targets_suppressed_by_list", s.targets_suppressed_by_list);
            peers.add("acks_sent", s.acks_sent);
            peers.add("acks_received", s.acks_received);
            peers.add("pulls_initiated", s.pulls_initiated);
            peers.add("pull_requests_received", s.pull_requests_received);
            peers.add("pull_responses_received", s.pull_responses_received);
            peers.add("updates_via_push", s.updates_via_push);
            peers.add("updates_via_pull", s.updates_via_pull);
            peers.add("replicas_discovered", s.replicas_discovered);
        }

        let mut per_round_sent = RoundSeries::new("messages sent");
        for pt in stats.per_round_sent().points() {
            per_round_sent.record(pt.round, pt.value);
        }
        SimReport {
            rounds: self.driver.rounds_run(),
            engine,
            peers,
            per_round_sent,
        }
    }

    /// Forces a peer's availability (test/fault-injection hook). The
    /// change takes effect at the next round's status-change scan.
    pub fn set_online(&mut self, peer: PeerId, online: bool) {
        self.driver.set_online(peer, online);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SimulationBuilder;
    use crate::consistency;
    use crate::scenario::TopologySpec;
    use rumor_churn::MarkovChurn;
    use rumor_core::{ForwardPolicy, ProtocolConfig, PullStrategy};

    fn key() -> DataKey {
        DataKey::from_name("test-key")
    }

    fn with_fanout(population: usize, seed: u64, fanout: usize) -> SimulationBuilder {
        let config = ProtocolConfig::builder(population)
            .fanout_absolute(fanout)
            .build()
            .unwrap();
        SimulationBuilder::new(population, seed).protocol(config)
    }

    #[test]
    fn push_reaches_everyone_when_all_online() {
        let mut sim = with_fanout(200, 3, 6).build().unwrap();
        let report = sim.propagate(key(), "v1", 50);
        assert!(report.aware_online_fraction > 0.99, "{report:?}");
        assert!(report.push_messages > 0);
        assert!(report.rounds < 50);
    }

    #[test]
    fn push_only_reaches_online_peers() {
        // No churn, no pull triggers for offline peers (they never come
        // online), so offline peers stay unaware.
        let mut sim = with_fanout(200, 3, 10)
            .online_fraction(0.5)
            .build()
            .unwrap();
        let report = sim.propagate(key(), "v1", 50);
        assert!(report.aware_online_fraction > 0.9);
        assert!(report.aware_total_fraction < 0.7);
    }

    #[test]
    fn awareness_is_monotone_per_round() {
        let mut sim = with_fanout(300, 5, 6).build().unwrap();
        let report = sim.propagate(key(), "v1", 50);
        let f: Vec<f64> = report.per_round.iter().map(|o| o.f_aware).collect();
        assert!(f.windows(2).all(|w| w[0] <= w[1] + 1e-12), "{f:?}");
    }

    #[test]
    fn same_seed_same_outcome() {
        // Fanout 4 (not the default f_r·R = 1): with a single push target
        // the rumor often dies in round 0 under *any* seed, making the
        // divergence assertion below vacuous-or-flaky. A real trajectory
        // gives the two seeds room to visibly differ.
        let run = |seed| {
            let mut sim = with_fanout(100, seed, 4)
                .online_fraction(0.5)
                .churn(MarkovChurn::new(0.9, 0.05).unwrap())
                .build()
                .unwrap();
            let r = sim.propagate(key(), "v1", 30);
            (r.push_messages, r.aware_online_fraction, r.rounds)
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds diverge");
    }

    #[test]
    fn offline_initiator_panics() {
        let mut sim = SimulationBuilder::new(4, 1)
            .online_count(1)
            .build()
            .unwrap();
        // Peer 3 starts offline.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.initiate_update(Some(PeerId::new(3)), key(), Some(Value::from("x")))
        }));
        // Initiating at an offline peer is allowed (it will push when the
        // engine delivers) — but sampling when nobody is online panics.
        assert!(result.is_ok(), "explicit initiator is accepted");
    }

    #[test]
    fn query_resolves_after_propagation() {
        let mut sim = with_fanout(100, 9, 6).build().unwrap();
        sim.propagate(key(), "answer", 30);
        let resolved = sim.query(key(), 5, QueryPolicy::Latest).expect("resolved");
        assert_eq!(resolved.value.unwrap().as_bytes(), b"answer");
    }

    #[test]
    fn query_samples_distinct_replicas() {
        // Regression (§4.4): sampling with replacement could probe the
        // same replica twice, so a query with attempts >= online count
        // could still miss the only replica holding the value. Distinct
        // sampling makes such queries exhaustive and deterministic.
        let mut sim = SimulationBuilder::new(5, 17).build().unwrap();
        // Only the initiator holds the value: no rounds are run, so the
        // round-0 pushes are still in flight.
        sim.initiate_update(Some(PeerId::new(0)), key(), Some(Value::from("lone")));
        for _ in 0..20 {
            let answer = sim
                .query(key(), 5, QueryPolicy::Latest)
                .expect("5 distinct draws over 5 online peers must include the holder");
            assert_eq!(answer.value.unwrap().as_bytes(), b"lone");
        }
    }

    #[test]
    fn query_attempts_beyond_population_answer_each_replica_once() {
        let mut sim = SimulationBuilder::new(3, 21).build().unwrap();
        sim.initiate_update(Some(PeerId::new(1)), key(), Some(Value::from("x")));
        // 100 attempts over 3 online replicas: exactly one holder answer.
        let answer = sim
            .query(key(), 100, QueryPolicy::Latest)
            .expect("resolved");
        assert_eq!(answer.value.unwrap().as_bytes(), b"x");
    }

    #[test]
    fn report_aggregates_counters() {
        let mut sim = SimulationBuilder::new(100, 2).build().unwrap();
        sim.propagate(key(), "v", 30);
        let report = sim.report();
        assert!(report.engine.get("sent") > 0);
        assert_eq!(
            report.engine.get("sent"),
            report.engine.get("delivered")
                + report.engine.get("lost_offline")
                + report.engine.get("lost_fault"),
            "message conservation"
        );
        assert!(report.peers.get("pushes_received") > 0);
    }

    #[test]
    fn loss_reduces_coverage_or_costs_messages() {
        let clean = {
            let mut sim = SimulationBuilder::new(200, 4).build().unwrap();
            sim.propagate(key(), "v", 40)
        };
        let lossy = {
            let mut sim = SimulationBuilder::new(200, 4).loss(0.7).build().unwrap();
            sim.propagate(key(), "v", 40)
        };
        assert!(
            lossy.aware_online_fraction <= clean.aware_online_fraction + 1e-9,
            "loss cannot improve coverage"
        );
    }

    #[test]
    fn pull_recovers_offline_peers_after_churn() {
        // Peers come online after the push and pull the update eagerly.
        let config = ProtocolConfig::builder(100)
            .fanout_fraction(0.05)
            .pull_strategy(PullStrategy::Eager)
            .build()
            .unwrap();
        let mut sim = SimulationBuilder::new(100, 6)
            .online_fraction(0.5)
            .churn(MarkovChurn::new(1.0, 0.2).unwrap()) // offline peers return
            .protocol(config)
            .build()
            .unwrap();
        let update = sim.initiate_update(None, key(), Some(Value::from("v")));
        sim.run_rounds(40);
        let aware_total = consistency::awareness(sim.peers(), None, update.id());
        assert!(
            aware_total > 0.95,
            "pull must spread the update to returning peers, got {aware_total}"
        );
    }

    #[test]
    fn suppressed_forwarding_spreads_less() {
        let mk = |pf| {
            let config = ProtocolConfig::builder(300)
                .fanout_fraction(0.01)
                .forward(pf)
                .build()
                .unwrap();
            let mut sim = SimulationBuilder::new(300, 8)
                .protocol(config)
                .build()
                .unwrap();
            sim.propagate(key(), "v", 40)
        };
        let always = mk(ForwardPolicy::Always);
        let never = mk(ForwardPolicy::Constant { p: 0.0 });
        assert!(always.aware_online_fraction > never.aware_online_fraction);
        assert!(always.push_messages > never.push_messages);
    }

    #[test]
    fn partial_knowledge_still_spreads() {
        let mut sim = with_fanout(400, 13, 10)
            .topology(TopologySpec::RandomSubset { k: 20 })
            .build()
            .unwrap();
        let report = sim.propagate(key(), "v", 60);
        assert!(
            report.aware_online_fraction > 0.95,
            "{}",
            report.aware_online_fraction
        );
    }
}
