//! Simulation reports.

use rumor_metrics::{CounterSet, RoundSeries};
use serde::{Deserialize, Serialize};

/// A per-round snapshot taken while an update propagates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundObservation {
    /// Round just executed.
    pub round: u32,
    /// Online peers at the end of the round.
    pub online: usize,
    /// Online peers aware of the tracked update.
    pub aware_online: usize,
    /// Aware fraction of the online population.
    pub f_aware: f64,
    /// Cumulative messages sent (all kinds).
    pub cum_messages: u64,
    /// Cumulative push messages sent.
    pub cum_push_messages: u64,
}

/// Outcome of propagating one update (the simulator's analogue of the
/// analytical `PushOutcome`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PushReport {
    /// Rounds executed.
    pub rounds: u32,
    /// Aware fraction of the online population at the end.
    pub aware_online_fraction: f64,
    /// Aware fraction of the *entire* population (offline included).
    pub aware_total_fraction: f64,
    /// Push messages sent (the paper's overhead metric).
    pub push_messages: u64,
    /// All messages sent (pushes + pulls + acks).
    pub total_messages: u64,
    /// Duplicate push deliveries observed by peers.
    pub duplicates: u64,
    /// Initial online population (normalisation denominator).
    pub initial_online: usize,
    /// Per-round trace.
    pub per_round: Vec<RoundObservation>,
}

impl PushReport {
    /// Push messages per initially-online peer — the y axis of the
    /// paper's figures.
    pub fn messages_per_initial_online(&self) -> f64 {
        if self.initial_online == 0 {
            0.0
        } else {
            self.push_messages as f64 / self.initial_online as f64
        }
    }

    /// `(f_aware, cumulative push messages / R_on(0))` series, matching
    /// `rumor_analysis::PushOutcome::awareness_cost_series`.
    pub fn awareness_cost_series(&self) -> Vec<(f64, f64)> {
        let denom = self.initial_online.max(1) as f64;
        self.per_round
            .iter()
            .map(|o| (o.f_aware, o.cum_push_messages as f64 / denom))
            .collect()
    }
}

/// Aggregate statistics over a whole simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Rounds executed in total.
    pub rounds: u32,
    /// Engine-level message accounting labels:
    /// `sent`, `delivered`, `lost_offline`, `lost_fault`.
    pub engine: CounterSet,
    /// Aggregated peer counters (pushes, pulls, acks, duplicates…).
    pub peers: CounterSet,
    /// Per-round sent messages.
    pub per_round_sent: RoundSeries,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_guards_zero() {
        let r = PushReport {
            rounds: 0,
            aware_online_fraction: 0.0,
            aware_total_fraction: 0.0,
            push_messages: 10,
            total_messages: 10,
            duplicates: 0,
            initial_online: 0,
            per_round: Vec::new(),
        };
        assert_eq!(r.messages_per_initial_online(), 0.0);
        assert!(r.awareness_cost_series().is_empty());
    }

    #[test]
    fn series_uses_push_messages() {
        let r = PushReport {
            rounds: 1,
            aware_online_fraction: 0.5,
            aware_total_fraction: 0.25,
            push_messages: 20,
            total_messages: 30,
            duplicates: 2,
            initial_online: 10,
            per_round: vec![RoundObservation {
                round: 0,
                online: 10,
                aware_online: 5,
                f_aware: 0.5,
                cum_messages: 30,
                cum_push_messages: 20,
            }],
        };
        assert_eq!(r.messages_per_initial_online(), 2.0);
        assert_eq!(r.awareness_cost_series(), vec![(0.5, 2.0)]);
    }
}
