//! Simulation reports.

use rumor_metrics::{CounterSet, RoundSeries};
use rumor_types::{DataKey, UpdateId};
use serde::{Deserialize, Serialize};

/// A per-round snapshot taken while an update propagates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundObservation {
    /// Round just executed.
    pub round: u32,
    /// Online peers at the end of the round.
    pub online: usize,
    /// Online peers aware of the tracked update.
    pub aware_online: usize,
    /// Aware fraction of the online population.
    pub f_aware: f64,
    /// Cumulative messages sent (all kinds).
    pub cum_messages: u64,
    /// Cumulative push messages sent.
    pub cum_push_messages: u64,
}

/// Outcome of propagating one update (the simulator's analogue of the
/// analytical `PushOutcome`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PushReport {
    /// Rounds executed.
    pub rounds: u32,
    /// Aware fraction of the online population at the end.
    pub aware_online_fraction: f64,
    /// Aware fraction of the *entire* population (offline included).
    pub aware_total_fraction: f64,
    /// Push messages sent (the paper's overhead metric).
    pub push_messages: u64,
    /// All messages sent (pushes + pulls + acks).
    pub total_messages: u64,
    /// Duplicate push deliveries observed by peers.
    pub duplicates: u64,
    /// Messages that reached nobody — lost to an offline target or a
    /// link fault (cumulative engine total,
    /// [`EngineStats::wasted`](rumor_net::EngineStats::wasted)).
    pub wasted: u64,
    /// Initial online population (normalisation denominator).
    pub initial_online: usize,
    /// Per-round trace.
    pub per_round: Vec<RoundObservation>,
}

impl PushReport {
    /// Fraction of sent messages that reached nobody.
    pub fn wasted_fraction(&self) -> f64 {
        if self.total_messages == 0 {
            0.0
        } else {
            self.wasted as f64 / self.total_messages as f64
        }
    }

    /// Push messages per initially-online peer — the y axis of the
    /// paper's figures.
    pub fn messages_per_initial_online(&self) -> f64 {
        if self.initial_online == 0 {
            0.0
        } else {
            self.push_messages as f64 / self.initial_online as f64
        }
    }

    /// `(f_aware, cumulative push messages / R_on(0))` series, matching
    /// `rumor_analysis::PushOutcome::awareness_cost_series`.
    pub fn awareness_cost_series(&self) -> Vec<(f64, f64)> {
        let denom = self.initial_online.max(1) as f64;
        self.per_round
            .iter()
            .map(|o| (o.f_aware, o.cum_push_messages as f64 / denom))
            .collect()
    }
}

/// Outcome of tracking one update through *any* mounted protocol — the
/// protocol-agnostic counterpart of [`PushReport`], produced by
/// [`Driver::track_update`](crate::Driver::track_update).
///
/// `protocol_messages` is whatever the mounted
/// [`Protocol`](crate::Protocol) counts as its overhead metric (push
/// messages for the paper peer, 0 for baselines whose engine-level total
/// is the meaningful number). Message counters are cumulative over the
/// driver's lifetime, mirroring [`PushReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Rounds executed by this tracking call.
    pub rounds: u32,
    /// Aware fraction of the online population at the end.
    pub aware_online_fraction: f64,
    /// Aware fraction of the *entire* population (offline included).
    pub aware_total_fraction: f64,
    /// Protocol-specific overhead messages (see type docs).
    pub protocol_messages: u64,
    /// All messages sent so far (cumulative engine total).
    pub total_messages: u64,
    /// Encoded wire bytes of `total_messages`, per the mounted protocol's
    /// [`Protocol::wire_sizer`](crate::Protocol::wire_sizer) (0 when the
    /// protocol has no wire codec).
    pub total_bytes: u64,
    /// Messages that reached nobody — lost to an offline target or a
    /// link fault (cumulative engine total,
    /// [`EngineStats::wasted`](rumor_net::EngineStats::wasted)).
    pub total_wasted: u64,
    /// Initial online population (normalisation denominator).
    pub initial_online: usize,
    /// Per-round trace.
    pub per_round: Vec<RoundObservation>,
    /// Per-round sent-message series over the driver's lifetime
    /// ([`EngineStats::per_round_sent`](rumor_net::EngineStats::per_round_sent),
    /// previously collected but unpublished).
    pub per_round_sent: RoundSeries,
}

impl RunReport {
    /// Total messages per initially-online peer.
    pub fn messages_per_initial_online(&self) -> f64 {
        if self.initial_online == 0 {
            0.0
        } else {
            self.total_messages as f64 / self.initial_online as f64
        }
    }

    /// Fraction of sent messages that reached nobody.
    pub fn wasted_fraction(&self) -> f64 {
        if self.total_messages == 0 {
            0.0
        } else {
            self.total_wasted as f64 / self.total_messages as f64
        }
    }

    /// Mean encoded bytes per sent message — the paper's `L_M` made
    /// measurable (0 when no message was sent or no sizer was installed).
    pub fn mean_message_bytes(&self) -> f64 {
        if self.total_messages == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.total_messages as f64
        }
    }
}

/// Per-update outcome inside a [`WorkloadReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateOutcome {
    /// The update's identity (protocol-assigned or derived from the
    /// event's sequence number for data-less baselines).
    pub update: UpdateId,
    /// Key the event targeted.
    pub key: DataKey,
    /// Whether the event was a tombstone.
    pub delete: bool,
    /// Schedule sequence number.
    pub sequence: u32,
    /// Absolute round at which the update was initiated.
    pub initiated_round: u32,
    /// First absolute round at which online awareness reached the
    /// scenario's convergence target, if it ever did.
    pub converged_round: Option<u32>,
    /// Online-aware fraction when the workload finished.
    pub final_aware_online: f64,
    /// Whole-population aware fraction when the workload finished.
    pub final_aware_total: f64,
}

impl UpdateOutcome {
    /// Rounds from initiation to convergence, if the update converged.
    pub fn rounds_to_converge(&self) -> Option<u32> {
        self.converged_round.map(|r| r - self.initiated_round)
    }
}

/// Outcome of executing a multi-update schedule through
/// [`Driver::run_workload`](crate::Driver::run_workload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Rounds executed by the workload call.
    pub rounds: u32,
    /// Messages sent during the workload (delta, all kinds).
    pub messages: u64,
    /// Initial online population (normalisation denominator).
    pub initial_online: usize,
    /// Scheduled events that could not be initiated before the horizon
    /// ended (nobody was online when their round came up).
    pub dropped_events: usize,
    /// Per-update outcomes in initiation order.
    pub updates: Vec<UpdateOutcome>,
}

impl WorkloadReport {
    /// Fraction of initiated updates that reached the convergence target.
    pub fn converged_fraction(&self) -> f64 {
        if self.updates.is_empty() {
            return 0.0;
        }
        let converged = self
            .updates
            .iter()
            .filter(|u| u.converged_round.is_some())
            .count();
        converged as f64 / self.updates.len() as f64
    }

    /// Mean rounds-to-convergence over the updates that converged.
    pub fn mean_rounds_to_converge(&self) -> Option<f64> {
        let latencies: Vec<f64> = self
            .updates
            .iter()
            .filter_map(|u| u.rounds_to_converge().map(f64::from))
            .collect();
        if latencies.is_empty() {
            None
        } else {
            Some(latencies.iter().sum::<f64>() / latencies.len() as f64)
        }
    }

    /// Mean final online awareness over all initiated updates.
    pub fn mean_final_awareness(&self) -> f64 {
        if self.updates.is_empty() {
            return 0.0;
        }
        self.updates
            .iter()
            .map(|u| u.final_aware_online)
            .sum::<f64>()
            / self.updates.len() as f64
    }

    /// Workload messages per initially-online peer.
    pub fn messages_per_initial_online(&self) -> f64 {
        if self.initial_online == 0 {
            0.0
        } else {
            self.messages as f64 / self.initial_online as f64
        }
    }
}

/// Aggregate statistics over a whole simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Rounds executed in total.
    pub rounds: u32,
    /// Engine-level message accounting labels:
    /// `sent`, `delivered`, `lost_offline`, `lost_fault`.
    pub engine: CounterSet,
    /// Aggregated peer counters (pushes, pulls, acks, duplicates…).
    pub peers: CounterSet,
    /// Per-round sent messages.
    pub per_round_sent: RoundSeries,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_guards_zero() {
        let r = PushReport {
            rounds: 0,
            aware_online_fraction: 0.0,
            aware_total_fraction: 0.0,
            push_messages: 10,
            total_messages: 10,
            duplicates: 0,
            wasted: 5,
            initial_online: 0,
            per_round: Vec::new(),
        };
        assert_eq!(r.messages_per_initial_online(), 0.0);
        assert!(r.awareness_cost_series().is_empty());
        assert!((r.wasted_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn workload_report_aggregates() {
        let outcome = |sequence, initiated, converged: Option<u32>, aware| UpdateOutcome {
            update: UpdateId::from_bits(u128::from(sequence) + 1),
            key: DataKey::new(1),
            delete: sequence % 2 == 1,
            sequence,
            initiated_round: initiated,
            converged_round: converged,
            final_aware_online: aware,
            final_aware_total: aware / 2.0,
        };
        let report = WorkloadReport {
            rounds: 50,
            messages: 200,
            initial_online: 20,
            dropped_events: 0,
            updates: vec![
                outcome(0, 0, Some(4), 1.0),
                outcome(1, 10, Some(16), 1.0),
                outcome(2, 20, None, 0.5),
            ],
        };
        assert!((report.converged_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.mean_rounds_to_converge(), Some(5.0));
        assert!((report.mean_final_awareness() - 2.5 / 3.0).abs() < 1e-12);
        assert_eq!(report.messages_per_initial_online(), 10.0);
        assert_eq!(report.updates[2].rounds_to_converge(), None);
    }

    #[test]
    fn empty_workload_report_guards_division() {
        let report = WorkloadReport {
            rounds: 0,
            messages: 0,
            initial_online: 0,
            dropped_events: 0,
            updates: Vec::new(),
        };
        assert_eq!(report.converged_fraction(), 0.0);
        assert_eq!(report.mean_rounds_to_converge(), None);
        assert_eq!(report.mean_final_awareness(), 0.0);
        assert_eq!(report.messages_per_initial_online(), 0.0);
    }

    #[test]
    fn series_uses_push_messages() {
        let r = PushReport {
            rounds: 1,
            aware_online_fraction: 0.5,
            aware_total_fraction: 0.25,
            push_messages: 20,
            total_messages: 30,
            duplicates: 2,
            wasted: 0,
            initial_online: 10,
            per_round: vec![RoundObservation {
                round: 0,
                online: 10,
                aware_online: 5,
                f_aware: 0.5,
                cum_messages: 30,
                cum_push_messages: 20,
            }],
        };
        assert_eq!(r.messages_per_initial_online(), 2.0);
        assert_eq!(r.awareness_cost_series(), vec![(0.5, 2.0)]);
    }
}
