//! Population-level consistency measurements.

use rumor_churn::OnlineSet;
use rumor_core::ReplicaPeer;
use rumor_types::{DataKey, UpdateId};

/// Fraction of peers aware of `update` — restricted to online peers when
/// `online` is given, otherwise over the whole population.
pub fn awareness(peers: &[ReplicaPeer], online: Option<&OnlineSet>, update: UpdateId) -> f64 {
    let mut total = 0usize;
    let mut aware = 0usize;
    for (i, peer) in peers.iter().enumerate() {
        if let Some(set) = online {
            if !set.is_online(rumor_types::PeerId::new(i as u32)) {
                continue;
            }
        }
        total += 1;
        if peer.has_processed(update) {
            aware += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        aware as f64 / total as f64
    }
}

/// Fraction of (online) peers whose store digest equals the digest of the
/// majority — the paper's quasi-consistency measure once gossip quiesces.
pub fn consistency_fraction(peers: &[ReplicaPeer], online: Option<&OnlineSet>) -> f64 {
    use std::collections::BTreeMap;
    let digests: Vec<_> = peers
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            online.is_none_or(|set| set.is_online(rumor_types::PeerId::new(*i as u32)))
        })
        .map(|(_, p)| p.store().digest())
        .collect();
    if digests.is_empty() {
        return 0.0;
    }
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for d in &digests {
        // Digest equality via a canonical rendering keeps the map simple.
        let key = format!("{d:?}");
        *counts.entry(key).or_default() += 1;
    }
    let majority = counts.values().copied().max().unwrap_or(0);
    majority as f64 / digests.len() as f64
}

/// For each peer, whether its visible value for `key` equals `expected`
/// (`None` = absent/tombstoned). Returns the per-peer staleness flags —
/// useful for staleness-over-time plots.
pub fn staleness_by_peer(
    peers: &[ReplicaPeer],
    key: DataKey,
    expected: Option<&[u8]>,
) -> Vec<bool> {
    peers
        .iter()
        .map(|p| {
            let actual = p.store().get(key).map(|v| v.as_bytes().to_vec());
            match (actual, expected) {
                (Some(a), Some(e)) => a != e,
                (None, None) => false,
                _ => true,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rumor_core::{ProtocolConfig, Value};
    use rumor_types::{PeerId, Round};

    fn peers(n: usize) -> Vec<ReplicaPeer> {
        let config = ProtocolConfig::builder(n).build().unwrap();
        (0..n)
            .map(|i| ReplicaPeer::new(PeerId::new(i as u32), config.clone()))
            .collect()
    }

    #[test]
    fn awareness_counts_processed_updates() {
        let mut ps = peers(4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let update = ps[0].initiate_update(
            DataKey::new(1),
            Some(Value::from("x")),
            Round::ZERO,
            &mut rng,
            &mut rumor_net::EffectSink::new(),
        );
        assert_eq!(awareness(&ps, None, update.id()), 0.25);
    }

    #[test]
    fn awareness_respects_online_filter() {
        let mut ps = peers(4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let update = ps[0].initiate_update(
            DataKey::new(1),
            Some(Value::from("x")),
            Round::ZERO,
            &mut rng,
            &mut rumor_net::EffectSink::new(),
        );
        let online = rumor_churn::OnlineSet::with_online_count(4, 1); // only peer 0
        assert_eq!(awareness(&ps, Some(&online), update.id()), 1.0);
    }

    #[test]
    fn awareness_of_empty_population_is_zero() {
        assert_eq!(
            awareness(&[], None, rumor_types::UpdateId::from_bits(1)),
            0.0
        );
    }

    #[test]
    fn consistency_detects_divergence() {
        let mut ps = peers(3);
        assert_eq!(consistency_fraction(&ps, None), 1.0, "empty stores agree");
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        ps[0].initiate_update(
            DataKey::new(1),
            Some(Value::from("x")),
            Round::ZERO,
            &mut rng,
            &mut rumor_net::EffectSink::new(),
        );
        let frac = consistency_fraction(&ps, None);
        assert!((frac - 2.0 / 3.0).abs() < 1e-12, "{frac}");
    }

    #[test]
    fn staleness_flags_mismatches() {
        let mut ps = peers(2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        ps[0].initiate_update(
            DataKey::new(1),
            Some(Value::from("new")),
            Round::ZERO,
            &mut rng,
            &mut rumor_net::EffectSink::new(),
        );
        let flags = staleness_by_peer(&ps, DataKey::new(1), Some(b"new"));
        assert_eq!(flags, vec![false, true]);
        let absent = staleness_by_peer(&ps, DataKey::new(9), None);
        assert_eq!(absent, vec![false, false]);
    }
}
