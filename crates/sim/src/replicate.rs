//! The deterministic parallel replication harness.
//!
//! The paper's figures are Monte Carlo estimates — success probability,
//! rounds to convergence, message cost under churn — so every published
//! number needs replication statistics behind it. [`Experiment`] is the
//! one way the workspace runs repeated trials: it derives an independent
//! ChaCha8 substream per replication from a master seed (through
//! [`rumor_types::SeedSequence`], namespace `"replication"`), fans the
//! replications out across a std-thread worker pool, and collects results
//! **by replication index, never by completion order** — so the output is
//! bit-identical for any worker count, preserving the repo's determinism
//! invariant while the wall clock scales with cores.
//!
//! Per-replication reports fold into a [`ReplicatedReport`] whose axes
//! are [`SampleStats`] (mean, variance, Student-t 95% CI, percentiles)
//! from `rumor-metrics` — the numbers the figure artefacts publish as
//! `mean/ci95/stddev/n` and `render` draws as error bars.
//!
//! One harness, many replications: no other crate may grow a
//! `for trial in 0..` loop of its own, mirroring the "one driver, many
//! protocols" invariant of [`Driver`](crate::Driver).
//!
//! # Examples
//!
//! ```
//! use rumor_core::ProtocolConfig;
//! use rumor_sim::{Experiment, ReplicatedReport, Scenario};
//! use rumor_types::DataKey;
//!
//! let experiment = Experiment::new(42, 8);
//! let reports = experiment.run(|rep| {
//!     let scenario = Scenario::builder(100, rep.seed)
//!         .online_fraction(0.5)
//!         .build()
//!         .expect("valid scenario");
//!     let config = ProtocolConfig::builder(100)
//!         .fanout_absolute(4)
//!         .build()
//!         .expect("valid config");
//!     let mut sim = scenario.simulation(config);
//!     sim.propagate(DataKey::from_name("motd"), "hi", 40)
//! });
//! let agg = ReplicatedReport::from_push(&reports);
//! assert_eq!(agg.n, 8);
//! assert!(agg.aware_online_fraction.mean() > 0.5);
//! ```

use crate::report::{PushReport, RunReport, WorkloadReport};
use rumor_metrics::SampleStats;
use rumor_types::SeedSequence;
use serde::{Deserialize, Serialize};

/// The seed-stream namespace replication substreams derive under. Pinned
/// by a golden-value test: changing it (or [`SeedSequence`]'s derivation)
/// silently shifts every replicated figure, so it must never drift.
const REPLICATION_NAMESPACE: &str = "replication";

/// One replication's identity: its index in `0..replications` and the
/// independent substream seed derived for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Replication {
    /// Replication index (also the collection slot — output order).
    pub index: u32,
    /// Independent ChaCha8 substream seed for this replication; feed it
    /// to [`Scenario::builder`](crate::Scenario::builder) as the
    /// scenario seed.
    pub seed: u64,
}

/// A deterministic parallel Monte Carlo experiment: a replication count,
/// a master seed, and a worker pool.
///
/// The replication body is any `Fn(Replication) -> T` — typically "build
/// the `Scenario` from `rep.seed`, mount a protocol, run, return the
/// report". The harness guarantees the returned `Vec<T>` is in
/// replication-index order regardless of scheduling, so aggregate
/// results are bit-identical for any thread count.
#[derive(Debug, Clone)]
pub struct Experiment {
    master_seed: u64,
    replications: u32,
    threads: Option<usize>,
}

impl Experiment {
    /// Creates an experiment of `replications` trials rooted at
    /// `master_seed`, with the worker count defaulting to the machine's
    /// available parallelism.
    pub fn new(master_seed: u64, replications: u32) -> Self {
        Self {
            master_seed,
            replications,
            threads: None,
        }
    }

    /// Pins the worker-thread count (tests use 1/2/8 to prove
    /// thread-count invariance). `0` restores the default.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = (threads > 0).then_some(threads);
        self
    }

    /// The master seed all replication substreams derive from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Number of replications.
    pub fn replications(&self) -> u32 {
        self.replications
    }

    /// The independent substream seed for replication `index` — the one
    /// canonical derivation (master seed → `"replication"` namespace →
    /// indexed [`SeedSequence`]).
    pub fn replication_seed(master_seed: u64, index: u32) -> u64 {
        SeedSequence::new(master_seed, REPLICATION_NAMESPACE).seed_at(u64::from(index))
    }

    /// The replication identities this experiment will run, in order.
    /// The seed sequence is derived once and indexed per replication, so
    /// iteration does not re-hash the master seed per item.
    pub fn replications_iter(&self) -> impl Iterator<Item = Replication> + '_ {
        let seq = SeedSequence::new(self.master_seed, REPLICATION_NAMESPACE);
        (0..self.replications).map(move |index| Replication {
            index,
            seed: seq.seed_at(u64::from(index)),
        })
    }

    fn effective_threads(&self) -> usize {
        let hw = || {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };
        self.threads
            .unwrap_or_else(hw)
            .min(self.replications.max(1) as usize)
            .max(1)
    }

    /// Runs every replication through `body`, fanning out across the
    /// worker pool, and returns the outputs **in replication-index
    /// order** — identical for any thread count.
    ///
    /// Workers claim replication indices from a shared atomic counter
    /// (natural load balancing for uneven trial durations) and tag each
    /// output with its index; the harness then places outputs by tag, so
    /// completion order never leaks into the result.
    pub fn run<T, F>(&self, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Replication) -> T + Sync,
    {
        let n = self.replications as usize;
        let threads = self.effective_threads();
        if threads <= 1 {
            return self.replications_iter().map(body).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        // Derive the substream root once, outside the claim loop: workers
        // index into it instead of re-hashing the master seed per claim.
        let seq = SeedSequence::new(self.master_seed, REPLICATION_NAMESPACE);
        let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut produced = Vec::new();
                        loop {
                            let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if index >= n {
                                break;
                            }
                            let rep = Replication {
                                index: index as u32,
                                seed: seq.seed_at(index as u64),
                            };
                            produced.push((index, body(rep)));
                        }
                        produced
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("replication worker must not panic"))
                .collect()
        });
        tagged.sort_by_key(|(index, _)| *index);
        debug_assert!(tagged.iter().enumerate().all(|(i, (idx, _))| i == *idx));
        tagged.into_iter().map(|(_, out)| out).collect()
    }

    /// Convenience: run replications producing [`RunReport`]s and fold
    /// them into a [`ReplicatedReport`].
    pub fn run_replicated<F>(&self, body: F) -> ReplicatedReport
    where
        F: Fn(Replication) -> RunReport + Sync,
    {
        ReplicatedReport::from_runs(&self.run(body))
    }
}

/// Replication statistics over the driver's per-run metrics: each axis is
/// a [`SampleStats`] (mean, variance, Student-t 95% CI, percentiles) over
/// the per-replication values, in replication-index order.
///
/// Fold [`RunReport`]s, [`PushReport`]s or [`WorkloadReport`]s into it
/// with the matching constructor; the axes keep the same meaning across
/// sources (for workloads, awareness axes average the per-update finals
/// and `protocol_messages` is unused / all-zero).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedReport {
    /// Number of replications aggregated.
    pub n: u32,
    /// Rounds executed per replication.
    pub rounds: SampleStats,
    /// Final aware fraction of the online population.
    pub aware_online_fraction: SampleStats,
    /// Final aware fraction of the entire population.
    pub aware_total_fraction: SampleStats,
    /// Protocol-counted overhead messages (pushes for the paper peer).
    pub protocol_messages: SampleStats,
    /// All messages sent.
    pub total_messages: SampleStats,
    /// Total messages per initially-online peer.
    pub messages_per_initial_online: SampleStats,
}

impl ReplicatedReport {
    fn from_axes(axes: [Vec<f64>; 6]) -> Self {
        let [rounds, aware_online, aware_total, proto, total, per_peer] = axes;
        Self {
            n: rounds.len() as u32,
            rounds: SampleStats::of(&rounds),
            aware_online_fraction: SampleStats::of(&aware_online),
            aware_total_fraction: SampleStats::of(&aware_total),
            protocol_messages: SampleStats::of(&proto),
            total_messages: SampleStats::of(&total),
            messages_per_initial_online: SampleStats::of(&per_peer),
        }
    }

    /// Folds per-replication [`RunReport`]s (order = replication index).
    pub fn from_runs(reports: &[RunReport]) -> Self {
        Self::from_axes([
            reports.iter().map(|r| f64::from(r.rounds)).collect(),
            reports.iter().map(|r| r.aware_online_fraction).collect(),
            reports.iter().map(|r| r.aware_total_fraction).collect(),
            reports.iter().map(|r| r.protocol_messages as f64).collect(),
            reports.iter().map(|r| r.total_messages as f64).collect(),
            reports
                .iter()
                .map(RunReport::messages_per_initial_online)
                .collect(),
        ])
    }

    /// Folds per-replication [`PushReport`]s; `push_messages` lands on
    /// the `protocol_messages` axis.
    pub fn from_push(reports: &[PushReport]) -> Self {
        Self::from_axes([
            reports.iter().map(|r| f64::from(r.rounds)).collect(),
            reports.iter().map(|r| r.aware_online_fraction).collect(),
            reports.iter().map(|r| r.aware_total_fraction).collect(),
            reports.iter().map(|r| r.push_messages as f64).collect(),
            reports.iter().map(|r| r.total_messages as f64).collect(),
            reports
                .iter()
                .map(PushReport::messages_per_initial_online)
                .collect(),
        ])
    }

    /// Folds per-replication [`WorkloadReport`]s: the awareness axes
    /// carry each replication's mean final awareness over its updates,
    /// `total_messages` the workload message delta, and
    /// `protocol_messages` is zero (workloads report engine totals).
    pub fn from_workloads(reports: &[WorkloadReport]) -> Self {
        let mean_total = |r: &WorkloadReport| {
            if r.updates.is_empty() {
                0.0
            } else {
                r.updates.iter().map(|u| u.final_aware_total).sum::<f64>() / r.updates.len() as f64
            }
        };
        Self::from_axes([
            reports.iter().map(|r| f64::from(r.rounds)).collect(),
            reports
                .iter()
                .map(WorkloadReport::mean_final_awareness)
                .collect(),
            reports.iter().map(mean_total).collect(),
            vec![0.0; reports.len()],
            reports.iter().map(|r| r.messages as f64).collect(),
            reports
                .iter()
                .map(WorkloadReport::messages_per_initial_online)
                .collect(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use rumor_core::ProtocolConfig;
    use rumor_types::DataKey;

    fn replicate(threads: usize, master_seed: u64, reps: u32) -> ReplicatedReport {
        let experiment = Experiment::new(master_seed, reps).threads(threads);
        let reports = experiment.run(|rep| {
            let scenario = Scenario::builder(80, rep.seed)
                .online_fraction(0.5)
                .build()
                .expect("valid scenario");
            let config = ProtocolConfig::builder(80)
                .fanout_absolute(4)
                .build()
                .expect("valid config");
            let mut sim = scenario.simulation(config);
            sim.propagate(DataKey::from_name("det"), "v", 40)
        });
        ReplicatedReport::from_push(&reports)
    }

    #[test]
    fn report_is_identical_across_thread_counts() {
        let one = replicate(1, 7, 12);
        let two = replicate(2, 7, 12);
        let eight = replicate(8, 7, 12);
        assert_eq!(one, two, "1 vs 2 worker threads");
        assert_eq!(one, eight, "1 vs 8 worker threads");
        // Byte-identical, not merely approximately equal.
        assert_eq!(format!("{one:?}"), format!("{eight:?}"));
        assert_eq!(one.n, 12);
    }

    #[test]
    fn golden_replication_seeds() {
        // Pins the seed-stream derivation (master seed → "replication"
        // namespace → indexed SeedSequence). If this test fails, the
        // substream derivation changed and every replicated figure in
        // the repo silently shifted — do not update the constants
        // without bumping the experiment artefact versioning.
        let golden: [(u32, u64); 4] = [
            (0, 7_737_892_771_924_103_251),
            (1, 2_683_890_993_354_154_129),
            (2, 5_578_015_881_185_249_317),
            (3, 15_672_543_879_560_378_132),
        ];
        for (index, expected) in golden {
            assert_eq!(
                Experiment::replication_seed(42, index),
                expected,
                "substream {index} of master seed 42 drifted"
            );
        }
    }

    #[test]
    fn substreams_are_independent_and_stable() {
        // Distinct substreams of one master seed must differ…
        let seeds: Vec<u64> = (0..64)
            .map(|i| Experiment::replication_seed(9, i))
            .collect();
        let distinct: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), seeds.len(), "substream collision");
        // …and substream i must be stable across runs (no accidental
        // stream reuse / stateful derivation).
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(Experiment::replication_seed(9, i as u32), s);
        }
    }

    #[test]
    fn substreams_diverge_in_trajectory_not_just_seed() {
        // Replications i and j (i ≠ j) of the same master seed must
        // produce different trajectories.
        let experiment = Experiment::new(3, 6).threads(1);
        let reports = experiment.run(|rep| {
            let scenario = Scenario::builder(60, rep.seed)
                .online_fraction(0.4)
                .build()
                .expect("valid scenario");
            let config = ProtocolConfig::builder(60)
                .fanout_absolute(3)
                .build()
                .expect("valid config");
            let mut sim = scenario.simulation(config);
            sim.propagate(DataKey::from_name("div"), "v", 40)
        });
        let signatures: Vec<(u64, u32)> = reports
            .iter()
            .map(|r| (r.total_messages, r.rounds))
            .collect();
        let distinct: std::collections::HashSet<&(u64, u32)> = signatures.iter().collect();
        assert!(
            distinct.len() > 1,
            "all replications produced one trajectory: {signatures:?}"
        );
    }

    #[test]
    fn outputs_are_in_replication_index_order() {
        let experiment = Experiment::new(1, 64).threads(8);
        let indices = experiment.run(|rep| rep.index);
        assert_eq!(indices, (0..64).collect::<Vec<u32>>());
        let seeds = experiment.run(|rep| rep.seed);
        let expected: Vec<u64> = (0..64)
            .map(|i| Experiment::replication_seed(1, i))
            .collect();
        assert_eq!(seeds, expected);
    }

    #[test]
    fn hoisted_seed_derivation_matches_per_index_derivation() {
        // The worker pool indexes one pre-derived SeedSequence instead of
        // re-hashing the master seed per claim; both paths must agree.
        let experiment = Experiment::new(42, 8);
        for rep in experiment.replications_iter() {
            assert_eq!(rep.seed, Experiment::replication_seed(42, rep.index));
        }
    }

    #[test]
    fn zero_replications_yield_empty_report() {
        let experiment = Experiment::new(5, 0);
        let outputs: Vec<u32> = experiment.run(|rep| rep.index);
        assert!(outputs.is_empty());
        let agg = ReplicatedReport::from_runs(&[]);
        assert_eq!(agg.n, 0);
        assert_eq!(agg.rounds.n(), 0);
    }

    #[test]
    fn workload_fold_uses_mean_final_awareness() {
        use crate::report::{UpdateOutcome, WorkloadReport};
        use rumor_types::UpdateId;
        let outcome = |aware: f64| UpdateOutcome {
            update: UpdateId::from_bits(1),
            key: DataKey::new(1),
            delete: false,
            sequence: 0,
            initiated_round: 0,
            converged_round: Some(3),
            final_aware_online: aware,
            final_aware_total: aware / 2.0,
        };
        let report = |aware: f64, messages: u64| WorkloadReport {
            rounds: 10,
            messages,
            initial_online: 10,
            dropped_events: 0,
            updates: vec![outcome(aware), outcome(aware)],
        };
        let agg = ReplicatedReport::from_workloads(&[report(1.0, 100), report(0.5, 300)]);
        assert_eq!(agg.n, 2);
        assert!((agg.aware_online_fraction.mean() - 0.75).abs() < 1e-12);
        assert!((agg.total_messages.mean() - 200.0).abs() < 1e-12);
        assert!((agg.messages_per_initial_online.mean() - 20.0).abs() < 1e-12);
        assert_eq!(agg.protocol_messages.mean(), 0.0);
    }
}
