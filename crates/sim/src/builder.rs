//! Simulation construction.

use crate::error::SimError;
use crate::runner::Simulation;
use rumor_churn::{Churn, OnlineSet, StaticChurn};
use rumor_core::{ProtocolConfig, ReplicaPeer};
use rumor_net::{topology, BernoulliLoss, LinkFilter, Partition, PerfectLinks, SyncEngine};
use rumor_types::{derive_seed, PeerId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// How much of the replica set each peer initially knows (§2: "each
/// replica knows a minimal fraction of the complete set of replicas").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// Everyone knows everyone.
    Full,
    /// Each peer knows `k` uniformly random peers.
    RandomSubset {
        /// Out-degree of the knowledge graph.
        k: usize,
    },
}

/// Builder for [`Simulation`].
///
/// # Examples
///
/// ```
/// use rumor_sim::{SimulationBuilder, TopologySpec};
/// use rumor_churn::MarkovChurn;
///
/// let sim = SimulationBuilder::new(1_000, 7)
///     .online_fraction(0.1)
///     .topology(TopologySpec::RandomSubset { k: 50 })
///     .churn(MarkovChurn::new(0.95, 0.0)?)
///     .build()?;
/// assert_eq!(sim.population(), 1_000);
/// assert_eq!(sim.online().online_count(), 100);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SimulationBuilder {
    population: usize,
    seed: u64,
    online_count: Option<usize>,
    topology: TopologySpec,
    churn: Box<dyn Churn>,
    protocol: Option<ProtocolConfig>,
    loss: f64,
    partition: Option<Partition>,
}

impl std::fmt::Debug for SimulationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("population", &self.population)
            .field("seed", &self.seed)
            .field("online_count", &self.online_count)
            .field("topology", &self.topology)
            .field("loss", &self.loss)
            .finish_non_exhaustive()
    }
}

impl SimulationBuilder {
    /// Starts building a simulation of `population` replicas with a
    /// top-level `seed` from which every random stream derives.
    pub fn new(population: usize, seed: u64) -> Self {
        Self {
            population,
            seed,
            online_count: None,
            topology: TopologySpec::Full,
            churn: Box::new(StaticChurn::new()),
            protocol: None,
            loss: 0.0,
            partition: None,
        }
    }

    /// Sets the initially online peer count.
    pub fn online_count(mut self, count: usize) -> Self {
        self.online_count = Some(count);
        self
    }

    /// Sets the initially online fraction of the population.
    pub fn online_fraction(mut self, fraction: f64) -> Self {
        self.online_count = Some((self.population as f64 * fraction).round() as usize);
        self
    }

    /// Sets the knowledge-graph topology.
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        self.topology = spec;
        self
    }

    /// Installs an availability model (default: no churn).
    pub fn churn(mut self, churn: impl Churn + 'static) -> Self {
        self.churn = Box::new(churn);
        self
    }

    /// Installs a protocol configuration (default:
    /// `ProtocolConfig::builder(population)` defaults).
    pub fn protocol(mut self, config: ProtocolConfig) -> Self {
        self.protocol = Some(config);
        self
    }

    /// Adds independent message loss with probability `p`.
    pub fn loss(mut self, p: f64) -> Self {
        self.loss = p.clamp(0.0, 1.0);
        self
    }

    /// Adds a network partition.
    pub fn partition(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the population is empty, the online
    /// count exceeds it, or the protocol configuration is invalid.
    pub fn build(self) -> Result<Simulation, SimError> {
        if self.population == 0 {
            return Err(SimError::InvalidSetup {
                reason: "population must be non-empty".into(),
            });
        }
        let online_count = self
            .online_count
            .unwrap_or(self.population);
        if online_count > self.population {
            return Err(SimError::InvalidSetup {
                reason: format!(
                    "online count {online_count} exceeds population {}",
                    self.population
                ),
            });
        }
        if online_count == 0 {
            return Err(SimError::InvalidSetup {
                reason: "at least one peer must start online".into(),
            });
        }
        let config = match self.protocol {
            Some(c) => c,
            None => ProtocolConfig::builder(self.population).build()?,
        };

        let mut topo_rng = ChaCha8Rng::seed_from_u64(derive_seed(self.seed, "topology"));
        let adjacency = match self.topology {
            TopologySpec::Full => topology::full(self.population),
            TopologySpec::RandomSubset { k } => {
                if k >= self.population {
                    return Err(SimError::InvalidSetup {
                        reason: format!(
                            "subset degree {k} must be below population {}",
                            self.population
                        ),
                    });
                }
                topology::random_subsets(self.population, k, &mut topo_rng)
            }
        };

        let online = OnlineSet::with_online_count(self.population, online_count);
        let mut peers = Vec::with_capacity(self.population);
        for (i, known) in adjacency.into_iter().enumerate() {
            let id = PeerId::new(i as u32);
            let mut peer = ReplicaPeer::new(id, config.clone());
            peer.learn_replicas(known);
            if !online.is_online(id) {
                peer.set_initially_offline();
            }
            peers.push(peer);
        }

        let filter: Box<dyn LinkFilter> = match (self.loss > 0.0, self.partition) {
            (false, None) => Box::new(PerfectLinks),
            (true, None) => Box::new(BernoulliLoss::new(self.loss)),
            (false, Some(p)) => Box::new(p),
            (true, Some(p)) => Box::new(ComposedFilter {
                loss: BernoulliLoss::new(self.loss),
                partition: p,
            }),
        };

        Ok(Simulation::assemble(
            peers,
            online,
            self.churn,
            SyncEngine::new(self.population),
            filter,
            self.seed,
        ))
    }
}

struct ComposedFilter {
    loss: BernoulliLoss,
    partition: Partition,
}

impl LinkFilter for ComposedFilter {
    fn allows(
        &self,
        from: PeerId,
        to: PeerId,
        round: rumor_types::Round,
        rng: &mut ChaCha8Rng,
    ) -> bool {
        self.partition.allows(from, to, round, rng) && self.loss.allows(from, to, round, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_defaults() {
        let sim = SimulationBuilder::new(10, 1).build().unwrap();
        assert_eq!(sim.population(), 10);
        assert_eq!(sim.online().online_count(), 10, "default: everyone online");
    }

    #[test]
    fn online_fraction_rounds() {
        let sim = SimulationBuilder::new(10, 1).online_fraction(0.25).build().unwrap();
        assert_eq!(sim.online().online_count(), 3);
    }

    #[test]
    fn rejects_empty_population() {
        assert!(SimulationBuilder::new(0, 1).build().is_err());
    }

    #[test]
    fn rejects_online_overflow() {
        assert!(SimulationBuilder::new(5, 1).online_count(6).build().is_err());
    }

    #[test]
    fn rejects_all_offline() {
        assert!(SimulationBuilder::new(5, 1).online_count(0).build().is_err());
    }

    #[test]
    fn rejects_oversized_subset_degree() {
        let r = SimulationBuilder::new(5, 1)
            .topology(TopologySpec::RandomSubset { k: 5 })
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn offline_peers_start_unconfident() {
        let sim = SimulationBuilder::new(4, 1).online_count(2).build().unwrap();
        assert!(sim.peer(PeerId::new(0)).is_confident());
        assert!(!sim.peer(PeerId::new(3)).is_confident());
    }

    #[test]
    fn subset_topology_limits_knowledge() {
        let sim = SimulationBuilder::new(50, 1)
            .topology(TopologySpec::RandomSubset { k: 5 })
            .build()
            .unwrap();
        assert!((0..50).all(|i| sim.peer(PeerId::new(i)).known_replicas().len() == 5));
    }
}
