//! Simulation construction.
//!
//! [`SimulationBuilder`] is the historical paper-protocol entry point,
//! now a thin typed wrapper over the declarative
//! [`Scenario`](crate::Scenario) API: it validates the same environment
//! knobs, derives the same seeded random streams, and mounts
//! [`PaperProtocol`](crate::PaperProtocol) into the shared
//! [`Driver`](crate::Driver).

use crate::driver::PaperProtocol;
use crate::error::SimError;
use crate::runner::Simulation;
use crate::scenario::{ConvergenceSpec, Scenario, TopologySpec};
use rumor_churn::Churn;
use rumor_core::ProtocolConfig;
use rumor_net::Partition;

/// Builder for [`Simulation`].
///
/// # Examples
///
/// ```
/// use rumor_sim::{SimulationBuilder, TopologySpec};
/// use rumor_churn::MarkovChurn;
///
/// let sim = SimulationBuilder::new(1_000, 7)
///     .online_fraction(0.1)
///     .topology(TopologySpec::RandomSubset { k: 50 })
///     .churn(MarkovChurn::new(0.95, 0.0)?)
///     .build()?;
/// assert_eq!(sim.population(), 1_000);
/// assert_eq!(sim.online().online_count(), 100);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SimulationBuilder {
    population: usize,
    seed: u64,
    online_count: Option<usize>,
    topology: TopologySpec,
    churn: Option<Box<dyn Churn>>,
    protocol: Option<ProtocolConfig>,
    loss: f64,
    partition: Option<Partition>,
    convergence: ConvergenceSpec,
}

impl std::fmt::Debug for SimulationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("population", &self.population)
            .field("seed", &self.seed)
            .field("online_count", &self.online_count)
            .field("topology", &self.topology)
            .field("loss", &self.loss)
            .finish_non_exhaustive()
    }
}

impl SimulationBuilder {
    /// Starts building a simulation of `population` replicas with a
    /// top-level `seed` from which every random stream derives.
    pub fn new(population: usize, seed: u64) -> Self {
        Self {
            population,
            seed,
            online_count: None,
            topology: TopologySpec::Full,
            churn: None,
            protocol: None,
            loss: 0.0,
            partition: None,
            convergence: ConvergenceSpec::default(),
        }
    }

    /// Sets the initially online peer count.
    pub fn online_count(mut self, count: usize) -> Self {
        self.online_count = Some(count);
        self
    }

    /// Sets the initially online fraction of the population.
    pub fn online_fraction(mut self, fraction: f64) -> Self {
        self.online_count = Some((self.population as f64 * fraction).round() as usize);
        self
    }

    /// Sets the knowledge-graph topology.
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        self.topology = spec;
        self
    }

    /// Installs an availability model (default: no churn).
    pub fn churn(mut self, churn: impl Churn + 'static) -> Self {
        self.churn = Some(Box::new(churn));
        self
    }

    /// Installs a protocol configuration (default:
    /// `ProtocolConfig::builder(population)` defaults).
    pub fn protocol(mut self, config: ProtocolConfig) -> Self {
        self.protocol = Some(config);
        self
    }

    /// Adds independent message loss with probability `p`.
    pub fn loss(mut self, p: f64) -> Self {
        self.loss = p.clamp(0.0, 1.0);
        self
    }

    /// Adds a network partition.
    pub fn partition(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Overrides the convergence criterion used by
    /// [`Simulation::track_update`] (default:
    /// [`ConvergenceSpec::default`]).
    pub fn convergence(mut self, spec: ConvergenceSpec) -> Self {
        self.convergence = spec;
        self
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the population is empty, the online
    /// count exceeds it, or the protocol configuration is invalid.
    pub fn build(self) -> Result<Simulation, SimError> {
        let config = match self.protocol {
            Some(c) => c,
            None => ProtocolConfig::builder(self.population).build()?,
        };
        let mut scenario = Scenario::builder(self.population, self.seed)
            .topology(self.topology)
            .loss(self.loss)
            .convergence(self.convergence);
        if let Some(count) = self.online_count {
            scenario = scenario.online_count(count);
        }
        if let Some(partition) = self.partition {
            scenario = scenario.partition(partition);
        }
        let scenario = scenario.build()?;
        let protocol = PaperProtocol::new(config);
        let driver = match self.churn {
            Some(churn) => scenario.drive_with_churn(&protocol, churn),
            None => scenario.drive(&protocol),
        };
        Ok(Simulation::from_parts(driver, protocol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_types::PeerId;

    #[test]
    fn builds_with_defaults() {
        let sim = SimulationBuilder::new(10, 1).build().unwrap();
        assert_eq!(sim.population(), 10);
        assert_eq!(sim.online().online_count(), 10, "default: everyone online");
    }

    #[test]
    fn online_fraction_rounds() {
        let sim = SimulationBuilder::new(10, 1)
            .online_fraction(0.25)
            .build()
            .unwrap();
        assert_eq!(sim.online().online_count(), 3);
    }

    #[test]
    fn rejects_empty_population() {
        assert!(SimulationBuilder::new(0, 1).build().is_err());
    }

    #[test]
    fn rejects_online_overflow() {
        assert!(SimulationBuilder::new(5, 1)
            .online_count(6)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_all_offline() {
        assert!(SimulationBuilder::new(5, 1)
            .online_count(0)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_oversized_subset_degree() {
        let r = SimulationBuilder::new(5, 1)
            .topology(TopologySpec::RandomSubset { k: 5 })
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn offline_peers_start_unconfident() {
        let sim = SimulationBuilder::new(4, 1)
            .online_count(2)
            .build()
            .unwrap();
        assert!(sim.peer(PeerId::new(0)).is_confident());
        assert!(!sim.peer(PeerId::new(3)).is_confident());
    }

    #[test]
    fn subset_topology_limits_knowledge() {
        let sim = SimulationBuilder::new(50, 1)
            .topology(TopologySpec::RandomSubset { k: 5 })
            .build()
            .unwrap();
        assert!((0..50).all(|i| sim.peer(PeerId::new(i)).known_replicas().len() == 5));
    }

    #[test]
    fn convergence_override_loosens_tracking() {
        // target 0.5: tracking stops as soon as half the online peers
        // are aware, well before full coverage.
        let loose = ConvergenceSpec {
            target: 0.5,
            ..ConvergenceSpec::default()
        };
        let run = |spec: Option<ConvergenceSpec>| {
            let mut b = SimulationBuilder::new(300, 5);
            if let Some(s) = spec {
                b = b.convergence(s);
            }
            let mut sim = b.build().unwrap();
            sim.propagate(rumor_types::DataKey::from_name("c"), "v", 60)
        };
        let strict = run(None);
        let loose = run(Some(loose));
        assert!(loose.rounds <= strict.rounds);
        assert!(loose.aware_online_fraction < strict.aware_online_fraction);
    }
}
