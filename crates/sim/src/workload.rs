//! Update workload generation.
//!
//! §2 motivates frequently updated data: bulletin boards, shared
//! calendars and address books, e-commerce catalogues. The paper's own
//! analysis injects a *single* update into a consistent state ("updates
//! are distributed sparsely", §2); the workload generator extends that to
//! streams of sparse updates over a key population so examples and
//! ablations can exercise steady-state behaviour.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor_churn::sample_poisson;
use rumor_types::{derive_seed, DataKey, UpdateId};
use serde::{Deserialize, Serialize};

/// One scheduled update event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateEvent {
    /// Round at which the update is initiated.
    pub round: u32,
    /// Key being written.
    pub key: DataKey,
    /// Whether the event is a delete (tombstone) instead of a write.
    pub delete: bool,
    /// Sequence number (unique per schedule, handy for payloads).
    pub sequence: u32,
}

impl UpdateEvent {
    /// Deterministic rumor identity for protocols without a data model
    /// (the dissemination baselines): derived from the schedule sequence
    /// number, so every contender in a comparison tracks "the same"
    /// update.
    pub fn rumor_id(&self) -> UpdateId {
        UpdateId::from_bits(u128::from(self.sequence) + 1)
    }

    /// Deterministic write payload for this event (`u{sequence}`), used
    /// by protocols that carry real values.
    pub fn payload(&self) -> String {
        format!("u{}", self.sequence)
    }
}

/// Builds Poisson-arrival update schedules.
///
/// # Examples
///
/// ```
/// use rumor_sim::WorkloadBuilder;
///
/// let events = WorkloadBuilder::new(42)
///     .keys(&["news/a", "news/b"])
///     .rate_per_round(0.5)
///     .rounds(100)
///     .generate();
/// assert!(!events.is_empty());
/// assert!(events.windows(2).all(|w| w[0].round <= w[1].round));
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    seed: u64,
    keys: Vec<DataKey>,
    rate: f64,
    rounds: u32,
    delete_fraction: f64,
}

impl WorkloadBuilder {
    /// Creates a builder with one default key, rate 0.1/round, 100 rounds.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            keys: vec![DataKey::from_name("default")],
            rate: 0.1,
            rounds: 100,
            delete_fraction: 0.0,
        }
    }

    /// Sets the key population by name.
    pub fn keys(mut self, names: &[&str]) -> Self {
        self.keys = names.iter().map(|n| DataKey::from_name(n)).collect();
        self
    }

    /// Sets the key population directly.
    pub fn data_keys(mut self, keys: Vec<DataKey>) -> Self {
        self.keys = keys;
        self
    }

    /// Mean updates per round (Poisson arrivals).
    pub fn rate_per_round(mut self, rate: f64) -> Self {
        self.rate = rate.max(0.0);
        self
    }

    /// Schedule horizon in rounds.
    pub fn rounds(mut self, rounds: u32) -> Self {
        self.rounds = rounds;
        self
    }

    /// Fraction of events that are deletions.
    pub fn delete_fraction(mut self, f: f64) -> Self {
        self.delete_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Generates the schedule, sorted by round.
    ///
    /// # Panics
    ///
    /// Panics if no keys were configured.
    pub fn generate(&self) -> Vec<UpdateEvent> {
        assert!(!self.keys.is_empty(), "workload needs at least one key");
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(self.seed, "workload"));
        let mut events = Vec::new();
        let mut sequence = 0;
        for round in 0..self.rounds {
            let n = sample_poisson(self.rate, &mut rng);
            for _ in 0..n {
                let key = *self.keys.choose(&mut rng).expect("non-empty");
                let delete = self.delete_fraction > 0.0
                    && rand::Rng::gen_bool(&mut rng, self.delete_fraction);
                events.push(UpdateEvent {
                    round,
                    key,
                    delete,
                    sequence,
                });
                sequence += 1;
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_sorted_and_sequenced() {
        let events = WorkloadBuilder::new(1)
            .rate_per_round(1.0)
            .rounds(50)
            .generate();
        assert!(events.windows(2).all(|w| w[0].round <= w[1].round));
        assert!(events.windows(2).all(|w| w[0].sequence < w[1].sequence));
    }

    #[test]
    fn rate_controls_volume() {
        let sparse = WorkloadBuilder::new(2)
            .rate_per_round(0.1)
            .rounds(200)
            .generate();
        let dense = WorkloadBuilder::new(2)
            .rate_per_round(2.0)
            .rounds(200)
            .generate();
        assert!(
            dense.len() > sparse.len() * 5,
            "{} vs {}",
            dense.len(),
            sparse.len()
        );
    }

    #[test]
    fn poisson_rate_statistically_close() {
        let events = WorkloadBuilder::new(3)
            .rate_per_round(0.5)
            .rounds(2000)
            .generate();
        let per_round = events.len() as f64 / 2000.0;
        assert!((per_round - 0.5).abs() < 0.1, "rate {per_round}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WorkloadBuilder::new(7).rate_per_round(0.7).generate();
        let b = WorkloadBuilder::new(7).rate_per_round(0.7).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn delete_fraction_generates_tombstones() {
        let events = WorkloadBuilder::new(4)
            .rate_per_round(1.0)
            .rounds(500)
            .delete_fraction(0.3)
            .generate();
        let deletes = events.iter().filter(|e| e.delete).count();
        let frac = deletes as f64 / events.len() as f64;
        assert!((frac - 0.3).abs() < 0.07, "delete fraction {frac}");
    }

    #[test]
    fn zero_rate_is_empty() {
        assert!(WorkloadBuilder::new(5)
            .rate_per_round(0.0)
            .generate()
            .is_empty());
    }

    #[test]
    fn keys_drawn_from_pool() {
        let events = WorkloadBuilder::new(6)
            .keys(&["a", "b"])
            .rate_per_round(1.0)
            .rounds(300)
            .generate();
        let (a, b) = (DataKey::from_name("a"), DataKey::from_name("b"));
        assert!(events.iter().all(|e| e.key == a || e.key == b));
        assert!(events.iter().any(|e| e.key == a));
        assert!(events.iter().any(|e| e.key == b));
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn empty_key_pool_panics() {
        let _ = WorkloadBuilder::new(1).data_keys(vec![]).generate();
    }
}
