//! Simulator error type.

use std::error::Error;
use std::fmt;

/// Errors raised while building or driving a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The protocol configuration was invalid.
    Protocol(rumor_core::CoreError),
    /// The churn model was invalid.
    Churn(rumor_churn::ChurnError),
    /// The simulation setup was inconsistent.
    InvalidSetup {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Protocol(e) => write!(f, "protocol configuration: {e}"),
            Self::Churn(e) => write!(f, "churn model: {e}"),
            Self::InvalidSetup { reason } => write!(f, "invalid simulation setup: {reason}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Protocol(e) => Some(e),
            Self::Churn(e) => Some(e),
            Self::InvalidSetup { .. } => None,
        }
    }
}

impl From<rumor_core::CoreError> for SimError {
    fn from(e: rumor_core::CoreError) -> Self {
        Self::Protocol(e)
    }
}

impl From<rumor_churn::ChurnError> for SimError {
    fn from(e: rumor_churn::ChurnError) -> Self {
        Self::Churn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SimError::InvalidSetup {
            reason: "zero peers".into(),
        };
        assert!(e.to_string().contains("zero peers"));
    }

    #[test]
    fn conversions_wrap_sources() {
        let core = rumor_core::ProtocolConfig::builder(0).build().unwrap_err();
        let wrapped: SimError = core.into();
        assert!(matches!(wrapped, SimError::Protocol(_)));
        assert!(Error::source(&wrapped).is_some());

        let churn = rumor_churn::MarkovChurn::new(2.0, 0.0).unwrap_err();
        let wrapped: SimError = churn.into();
        assert!(matches!(wrapped, SimError::Churn(_)));
    }
}
