//! Declarative experiment scenarios.
//!
//! A [`Scenario`] captures *everything about the environment* — population,
//! seed, topology, churn, link faults, initial availability, the update
//! workload, and the convergence criterion — while saying nothing about
//! the protocol under test. Mount any [`Protocol`](crate::Protocol) into
//! it with [`Scenario::drive`] and every contender (the paper peer,
//! Gnutella flooding, GOSSIP1, Demers anti-entropy, a P-Grid-hosted
//! partition) runs in the same environment: the identical topology draw,
//! initial availability and churn trajectory (topology and churn have
//! dedicated seeded streams), and the same loss/partition parameters.
//! Loss coin flips ride the protocol stream, so their *realisations*
//! are exactly replayed when the same protocol is driven twice, but
//! differ between protocols that consume randomness differently.
//!
//! Link *latency* is deliberately not a scenario knob: the driver runs
//! the paper's synchronous round model, where every message takes
//! exactly one round (§4.1). Variable-latency experiments belong to
//! `rumor_net::EventEngine`, outside this harness.
//!
//! # Examples
//!
//! ```
//! use rumor_churn::MarkovChurn;
//! use rumor_core::ProtocolConfig;
//! use rumor_sim::{PaperProtocol, Scenario, TopologySpec};
//!
//! let scenario = Scenario::builder(500, 42)
//!     .online_fraction(0.4)
//!     .topology(TopologySpec::RandomSubset { k: 50 })
//!     .churn(MarkovChurn::new(0.98, 0.01)?)
//!     .loss(0.05)
//!     .build()?;
//!
//! let config = ProtocolConfig::builder(500).fanout_fraction(0.04).build()?;
//! let protocol = PaperProtocol::new(config);
//! let mut driver = scenario.drive(&protocol);
//! driver.run_rounds(10);
//! assert_eq!(driver.population(), 500);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::driver::{Driver, PaperProtocol, Protocol};
use crate::error::SimError;
use crate::report::WorkloadReport;
use crate::runner::Simulation;
use crate::workload::UpdateEvent;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor_churn::{Churn, OnlineSet, StaticChurn};
use rumor_core::ProtocolConfig;
use rumor_net::{topology, BernoulliLoss, LinkFilter, Partition, PerfectLinks};
use rumor_obs::{NopTracer, Tracer};
use rumor_types::{derive_seed, PeerId};
use serde::{Deserialize, Serialize};

/// How much of the replica set each peer initially knows (§2: "each
/// replica knows a minimal fraction of the complete set of replicas").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// Everyone knows everyone.
    Full,
    /// Each peer knows `k` uniformly random peers.
    RandomSubset {
        /// Out-degree of the knowledge graph.
        k: usize,
    },
}

/// When a tracked propagation is considered finished: `patience`
/// consecutive rounds improving awareness by less than `epsilon`, or
/// awareness reaching `target`.
///
/// The default reproduces the criterion the simulator has always used
/// (`epsilon = 1e-9`, `patience = 3`, `target = 1.0`); scenarios can
/// loosen it (e.g. `target = 0.999`, the paper's "arbitrarily close
/// to 1") via [`ScenarioBuilder::convergence`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceSpec {
    /// Minimum per-round awareness improvement that counts as progress.
    pub epsilon: f64,
    /// Consecutive stalled rounds tolerated before declaring convergence.
    pub patience: u32,
    /// Awareness fraction at which convergence is immediate.
    pub target: f64,
}

impl Default for ConvergenceSpec {
    fn default() -> Self {
        Self {
            epsilon: 1e-9,
            patience: 3,
            target: 1.0,
        }
    }
}

/// A fully validated experiment environment; build via
/// [`Scenario::builder`], then mount protocols with [`Scenario::drive`].
///
/// A scenario is reusable: driving the same protocol twice replays the
/// run bit for bit, and driving different protocols pairs the topology
/// draw, initial availability and churn trajectory exactly — which is
/// what makes cross-protocol comparisons and A/B parameter sweeps
/// honest.
pub struct Scenario {
    population: usize,
    seed: u64,
    online_count: usize,
    topology: TopologySpec,
    churn: Box<dyn Fn() -> Box<dyn Churn>>,
    loss: f64,
    partition: Option<Partition>,
    workload: Vec<UpdateEvent>,
    convergence: ConvergenceSpec,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("population", &self.population)
            .field("seed", &self.seed)
            .field("online_count", &self.online_count)
            .field("topology", &self.topology)
            .field("loss", &self.loss)
            .field("workload_events", &self.workload.len())
            .finish_non_exhaustive()
    }
}

impl Scenario {
    /// Starts building a scenario of `population` peers whose every
    /// random stream derives from `seed`.
    pub fn builder(population: usize, seed: u64) -> ScenarioBuilder {
        ScenarioBuilder::new(population, seed)
    }

    /// Total population size `R`.
    pub fn population(&self) -> usize {
        self.population
    }

    /// The top-level experiment seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Peers online at round 0.
    pub fn online_count(&self) -> usize {
        self.online_count
    }

    /// The scheduled update workload (possibly empty).
    pub fn workload(&self) -> &[UpdateEvent] {
        &self.workload
    }

    /// The convergence criterion handed to every driver.
    pub fn convergence(&self) -> ConvergenceSpec {
        self.convergence
    }

    /// The scenario's topology draw: each peer's known-replica row (self
    /// excluded). Deterministic per scenario — every call (and every
    /// runtime mounting the scenario, driver or live cluster) sees the
    /// identical knowledge graph.
    pub fn adjacency(&self) -> Vec<Vec<PeerId>> {
        let mut topo_rng = ChaCha8Rng::seed_from_u64(derive_seed(self.seed, "topology"));
        match self.topology {
            TopologySpec::Full => topology::full(self.population),
            TopologySpec::RandomSubset { k } => {
                topology::random_subsets(self.population, k, &mut topo_rng)
            }
        }
    }

    /// The round-0 availability state.
    pub fn initial_online_set(&self) -> OnlineSet {
        OnlineSet::with_online_count(self.population, self.online_count)
    }

    /// A fresh churn instance from the scenario's factory (every mount
    /// sees the same churn model; pair it with the `"churn"`-derived RNG
    /// stream to replay the same trajectory).
    pub fn make_churn(&self) -> Box<dyn Churn> {
        (self.churn)()
    }

    /// The configured message-loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// The scenario's composed link-fault filter (partition before loss,
    /// so a cross-partition message consumes no loss randomness — it was
    /// never going to be delivered). Thread-safe so the live cluster
    /// runtime can share one filter across node threads.
    pub fn link_filter(&self) -> Box<dyn LinkFilter + Send + Sync> {
        match (self.loss > 0.0, self.partition.clone()) {
            (false, None) => Box::new(PerfectLinks),
            (true, None) => Box::new(BernoulliLoss::new(self.loss)),
            (false, Some(p)) => Box::new(p),
            (true, Some(p)) => Box::new((p, BernoulliLoss::new(self.loss))),
        }
    }

    /// Mounts `protocol` into the scenario, producing a ready-to-run
    /// [`Driver`]. Every call replays identical environment randomness.
    pub fn drive<P: Protocol>(&self, protocol: &P) -> Driver<P::Node> {
        self.drive_with_churn(protocol, (self.churn)())
    }

    /// Like [`Scenario::drive`] but with an explicit (possibly
    /// non-cloneable) churn instance for this one mount.
    pub fn drive_with_churn<P: Protocol>(
        &self,
        protocol: &P,
        churn: Box<dyn Churn>,
    ) -> Driver<P::Node> {
        self.drive_traced_with_churn(protocol, churn, NopTracer)
    }

    /// Like [`Scenario::drive`] but capturing structured trace events
    /// into `tracer`. Tracing consumes no randomness, so the traced run
    /// replays the untraced one bit for bit.
    pub fn drive_traced<P: Protocol, T: Tracer>(
        &self,
        protocol: &P,
        tracer: T,
    ) -> Driver<P::Node, T> {
        self.drive_traced_with_churn(protocol, (self.churn)(), tracer)
    }

    /// The fully general mount: explicit churn instance and tracer.
    pub fn drive_traced_with_churn<P: Protocol, T: Tracer>(
        &self,
        protocol: &P,
        churn: Box<dyn Churn>,
        tracer: T,
    ) -> Driver<P::Node, T> {
        let adjacency = self.adjacency();
        let online = self.initial_online_set();
        let mut nodes = Vec::with_capacity(self.population);
        for (i, known) in adjacency.into_iter().enumerate() {
            let id = PeerId::new(i as u32);
            nodes.push(protocol.spawn(id, known, online.is_online(id)));
        }
        let mut driver = Driver::assemble_traced(
            nodes,
            online,
            churn,
            self.link_filter(),
            ChaCha8Rng::seed_from_u64(derive_seed(self.seed, "protocol")),
            ChaCha8Rng::seed_from_u64(derive_seed(self.seed, "churn")),
            self.convergence,
            tracer,
        );
        driver.set_msg_sizer(protocol.wire_sizer());
        driver.set_msg_kind(protocol.trace_msg_kind());
        driver
    }

    /// Convenience: mounts the paper protocol and wraps the driver in the
    /// typed [`Simulation`] API.
    pub fn simulation(&self, config: ProtocolConfig) -> Simulation {
        let protocol = PaperProtocol::new(config);
        let driver = self.drive(&protocol);
        Simulation::from_parts(driver, protocol)
    }

    /// Convenience: mounts `protocol`, executes the scenario's own
    /// workload schedule, and returns the per-update report.
    pub fn run<P: Protocol>(&self, protocol: &P, settle_rounds: u32) -> WorkloadReport {
        let mut driver = self.drive(protocol);
        driver.run_workload(protocol, &self.workload, settle_rounds)
    }
}

/// Fallible builder for [`Scenario`].
///
/// # Examples
///
/// ```
/// use rumor_sim::{Scenario, WorkloadBuilder};
///
/// let workload = WorkloadBuilder::new(9).rate_per_round(0.2).rounds(40).generate();
/// let scenario = Scenario::builder(200, 9)
///     .online_fraction(0.5)
///     .workload(workload)
///     .build()?;
/// assert_eq!(scenario.online_count(), 100);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ScenarioBuilder {
    population: usize,
    seed: u64,
    online_count: Option<usize>,
    topology: TopologySpec,
    churn: Box<dyn Fn() -> Box<dyn Churn>>,
    loss: f64,
    partition: Option<Partition>,
    workload: Vec<UpdateEvent>,
    convergence: ConvergenceSpec,
}

impl std::fmt::Debug for ScenarioBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioBuilder")
            .field("population", &self.population)
            .field("seed", &self.seed)
            .field("online_count", &self.online_count)
            .field("topology", &self.topology)
            .field("loss", &self.loss)
            .finish_non_exhaustive()
    }
}

impl ScenarioBuilder {
    /// Starts building a scenario of `population` peers seeded by `seed`.
    pub fn new(population: usize, seed: u64) -> Self {
        Self {
            population,
            seed,
            online_count: None,
            topology: TopologySpec::Full,
            churn: Box::new(|| Box::new(StaticChurn::new())),
            loss: 0.0,
            partition: None,
            workload: Vec::new(),
            convergence: ConvergenceSpec::default(),
        }
    }

    /// Sets the initially online peer count.
    pub fn online_count(mut self, count: usize) -> Self {
        self.online_count = Some(count);
        self
    }

    /// Sets the initially online fraction of the population.
    pub fn online_fraction(mut self, fraction: f64) -> Self {
        self.online_count = Some((self.population as f64 * fraction).round() as usize);
        self
    }

    /// Sets the knowledge-graph topology.
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        self.topology = spec;
        self
    }

    /// Installs an availability model (default: no churn). The model is
    /// cloned per [`Scenario::drive`] so every mounted protocol sees the
    /// same churn trajectory.
    pub fn churn(mut self, churn: impl Churn + Clone + 'static) -> Self {
        self.churn = Box::new(move || Box::new(churn.clone()));
        self
    }

    /// Installs an availability model from a factory, for churn types
    /// that cannot be cloned.
    pub fn churn_with(mut self, factory: impl Fn() -> Box<dyn Churn> + 'static) -> Self {
        self.churn = Box::new(factory);
        self
    }

    /// Adds independent message loss with probability `p`.
    pub fn loss(mut self, p: f64) -> Self {
        self.loss = p.clamp(0.0, 1.0);
        self
    }

    /// Adds a network partition.
    pub fn partition(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Schedules an update workload (see
    /// [`WorkloadBuilder`](crate::WorkloadBuilder)) for
    /// [`Scenario::run`] / [`Driver::run_workload`](crate::Driver::run_workload).
    pub fn workload(mut self, events: Vec<UpdateEvent>) -> Self {
        self.workload = events;
        self
    }

    /// Overrides the convergence criterion (default:
    /// [`ConvergenceSpec::default`]).
    pub fn convergence(mut self, spec: ConvergenceSpec) -> Self {
        self.convergence = spec;
        self
    }

    /// Validates and freezes the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the population is empty, the online
    /// count exceeds it or is zero, or the subset topology degree is not
    /// below the population.
    pub fn build(self) -> Result<Scenario, SimError> {
        if self.population == 0 {
            return Err(SimError::InvalidSetup {
                reason: "population must be non-empty".into(),
            });
        }
        let online_count = self.online_count.unwrap_or(self.population);
        if online_count > self.population {
            return Err(SimError::InvalidSetup {
                reason: format!(
                    "online count {online_count} exceeds population {}",
                    self.population
                ),
            });
        }
        if online_count == 0 {
            return Err(SimError::InvalidSetup {
                reason: "at least one peer must start online".into(),
            });
        }
        if let TopologySpec::RandomSubset { k } = self.topology {
            if k >= self.population {
                return Err(SimError::InvalidSetup {
                    reason: format!(
                        "subset degree {k} must be below population {}",
                        self.population
                    ),
                });
            }
        }
        Ok(Scenario {
            population: self.population,
            seed: self.seed,
            online_count,
            topology: self.topology,
            churn: self.churn,
            loss: self.loss,
            partition: self.partition,
            workload: self.workload,
            convergence: self.convergence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rumor_churn::MarkovChurn;

    fn paper(population: usize) -> PaperProtocol {
        PaperProtocol::new(ProtocolConfig::builder(population).build().unwrap())
    }

    #[test]
    fn builds_with_defaults() {
        let s = Scenario::builder(10, 1).build().unwrap();
        assert_eq!(s.population(), 10);
        assert_eq!(s.online_count(), 10, "default: everyone online");
        assert!(s.workload().is_empty());
    }

    #[test]
    fn rejects_invalid_setups() {
        assert!(Scenario::builder(0, 1).build().is_err());
        assert!(Scenario::builder(5, 1).online_count(6).build().is_err());
        assert!(Scenario::builder(5, 1).online_count(0).build().is_err());
        assert!(Scenario::builder(5, 1)
            .topology(TopologySpec::RandomSubset { k: 5 })
            .build()
            .is_err());
    }

    #[test]
    fn driving_twice_replays_identical_randomness() {
        let scenario = Scenario::builder(100, 7)
            .online_fraction(0.5)
            .churn(MarkovChurn::new(0.9, 0.05).unwrap())
            .build()
            .unwrap();
        let protocol = paper(100);
        let run = |scenario: &Scenario| {
            let mut driver = scenario.drive(&protocol);
            let update = driver
                .initiate(
                    &protocol,
                    None,
                    &crate::workload::UpdateEvent {
                        round: 0,
                        key: rumor_types::DataKey::from_name("k"),
                        delete: false,
                        sequence: 0,
                    },
                )
                .unwrap();
            let report = driver.track_update(&protocol, update, 30);
            (report.rounds, report.total_messages, report.per_round)
        };
        assert_eq!(run(&scenario), run(&scenario));
    }

    #[test]
    fn convergence_spec_is_threaded_to_drivers() {
        let spec = ConvergenceSpec {
            epsilon: 0.5,
            patience: 1,
            target: 0.1,
        };
        let scenario = Scenario::builder(20, 3).convergence(spec).build().unwrap();
        let driver = scenario.drive(&paper(20));
        assert_eq!(driver.convergence(), spec);
    }

    #[test]
    fn subset_topology_limits_knowledge() {
        let scenario = Scenario::builder(50, 1)
            .topology(TopologySpec::RandomSubset { k: 5 })
            .build()
            .unwrap();
        let driver = scenario.drive(&paper(50));
        assert!((0..50).all(|i| driver.node(PeerId::new(i)).known_replicas().len() == 5));
    }
}
