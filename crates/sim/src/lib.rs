//! Discrete simulation of the hybrid push/pull update protocol — and the
//! protocol-agnostic scenario harness every baseline mounts into.
//!
//! The paper evaluates its algorithm analytically and names simulation as
//! future work ("To verify the correctness of the analysis if some of the
//! simplifying assumptions are relaxed, we plan to use simulations", §8).
//! This crate is that simulator: it executes the *actual protocol code*
//! from `rumor-core` over the churn and network substrates, under the
//! same synchronous round model the analysis assumes — so analytical and
//! simulated curves are directly comparable (see the `sim_vs_model`
//! experiment in `rumor-bench`).
//!
//! The experiment surface is declarative: a [`Scenario`] describes the
//! environment (population, topology, churn, link faults, workload,
//! convergence criterion) and a [`Protocol`] factory describes one
//! contender; [`Scenario::drive`] mounts the contender into the single
//! generic [`Driver`]. One driver, many protocols — the paper peer
//! ([`PaperProtocol`]), every `rumor-baselines` scheme and the
//! P-Grid-hosted partition all run in the same environment: identical
//! topology draw, initial availability and churn trajectory, same
//! loss/partition parameters.
//!
//! # Examples
//!
//! ```
//! use rumor_core::ProtocolConfig;
//! use rumor_sim::{Scenario, TopologySpec};
//! use rumor_types::DataKey;
//!
//! // 500 replicas, 30% initially online, full knowledge, no churn.
//! // Fanout f_r = 0.04 gives ≈ 6 expected *online* targets per push.
//! let scenario = Scenario::builder(500, 42)
//!     .online_fraction(0.3)
//!     .topology(TopologySpec::Full)
//!     .build()?;
//! let config = ProtocolConfig::builder(500).fanout_fraction(0.04).build()?;
//! let mut sim = scenario.simulation(config);
//! let report = sim.propagate(DataKey::from_name("motd"), "hello", 50);
//! assert!(report.aware_online_fraction > 0.95,
//!         "push reaches nearly all online peers, got {}",
//!         report.aware_online_fraction);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod consistency;
mod driver;
mod error;
mod replicate;
mod report;
mod runner;
mod scenario;
mod workload;

pub use builder::SimulationBuilder;
pub use consistency::{awareness, consistency_fraction, staleness_by_peer};
pub use driver::{Driver, MsgKinder, MsgTamper, PaperProtocol, Protocol, WireSizer};
pub use error::SimError;
pub use replicate::{Experiment, ReplicatedReport, Replication};
pub use report::{
    PushReport, RoundObservation, RunReport, SimReport, UpdateOutcome, WorkloadReport,
};
pub use runner::Simulation;
pub use scenario::{ConvergenceSpec, Scenario, ScenarioBuilder, TopologySpec};
pub use workload::{UpdateEvent, WorkloadBuilder};
