//! Discrete simulation of the hybrid push/pull update protocol.
//!
//! The paper evaluates its algorithm analytically and names simulation as
//! future work ("To verify the correctness of the analysis if some of the
//! simplifying assumptions are relaxed, we plan to use simulations", §8).
//! This crate is that simulator: it executes the *actual protocol code*
//! from `rumor-core` over the churn and network substrates, under the
//! same synchronous round model the analysis assumes — so analytical and
//! simulated curves are directly comparable (see the `sim_vs_model`
//! experiment in `rumor-bench`).
//!
//! # Examples
//!
//! ```
//! use rumor_core::ProtocolConfig;
//! use rumor_sim::{SimulationBuilder, TopologySpec};
//! use rumor_types::DataKey;
//!
//! // 500 replicas, 30% initially online, full knowledge, no churn.
//! // Fanout f_r = 0.04 gives ≈ 6 expected *online* targets per push.
//! let config = ProtocolConfig::builder(500).fanout_fraction(0.04).build()?;
//! let mut sim = SimulationBuilder::new(500, 42)
//!     .online_fraction(0.3)
//!     .topology(TopologySpec::Full)
//!     .protocol(config)
//!     .build()?;
//! let report = sim.propagate(DataKey::from_name("motd"), "hello", 50);
//! assert!(report.aware_online_fraction > 0.95,
//!         "push reaches nearly all online peers, got {}",
//!         report.aware_online_fraction);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod consistency;
mod error;
mod report;
mod runner;
mod workload;

pub use builder::{SimulationBuilder, TopologySpec};
pub use consistency::{awareness, consistency_fraction, staleness_by_peer};
pub use error::SimError;
pub use report::{PushReport, RoundObservation, SimReport};
pub use runner::Simulation;
pub use workload::{UpdateEvent, WorkloadBuilder};
