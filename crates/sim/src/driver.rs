//! The protocol-agnostic round driver and the [`Protocol`] factory trait.
//!
//! The paper's central claim is comparative: the hybrid push/pull scheme
//! beats flooding, GOSSIP1 and the Demers epidemics *under identical
//! churn and network conditions* (§5.6, §7.2). That comparison is only
//! honest when every contender runs inside the same experiment harness —
//! CUP (Roussopoulos & Baker) calls this "one harness, many protocols".
//! [`Driver`] is that harness: it owns the round orchestration (churn
//! transition → engine round → observation) for *any* [`Node`]
//! population, and a [`Protocol`] implementation describes how to mount
//! one contender into it (how to spawn a node, initiate an update, and
//! probe awareness).
//!
//! `rumor_sim::Simulation` is a thin typed wrapper over
//! `Driver<ReplicaPeer>`; `rumor_baselines::BaselineSim` wraps the same
//! driver for the baseline nodes. Neither contains a round loop of its
//! own.

use crate::report::{RoundObservation, RunReport, UpdateOutcome, WorkloadReport};
use crate::scenario::ConvergenceSpec;
use crate::workload::UpdateEvent;
use rand_chacha::ChaCha8Rng;
use rumor_churn::{Churn, OnlineSet};
use rumor_core::{ReplicaPeer, Value};
use rumor_metrics::ConvergenceDetector;
use rumor_net::{EffectSink, EngineStats, LinkFilter, Node, SyncEngine};
use rumor_obs::{EventKind, MsgKind, NopTracer, Tracer, CONDUCTOR};
use rumor_types::{PeerId, Round, UpdateId};

/// A pure function returning a message's encoded wire-frame size —
/// what [`Protocol::wire_sizer`] hands the engine for byte accounting.
pub type WireSizer<M> = fn(&M) -> usize;

/// A pure message transform a Byzantine host applies to a node's
/// outgoing traffic: `Some(forged)` replaces the message, `None` lets
/// it pass unchanged. What [`Protocol::byzantine_liar`] hands the
/// cluster runtime so adversarial members can lie in the protocol's own
/// vocabulary (the paper peer's liar answers pull digests with "you are
/// missing nothing").
pub type MsgTamper<M> = fn(&M) -> Option<M>;

/// A pure classifier mapping a protocol message to the coarse
/// [`MsgKind`] stamped on send/deliver trace events.
pub type MsgKinder<M> = fn(&M) -> MsgKind;

/// A factory that mounts one dissemination protocol into a
/// [`Scenario`](crate::Scenario): it spawns nodes, initiates scheduled
/// updates, and probes per-node awareness so the [`Driver`] can observe
/// propagation without knowing the protocol's message types.
pub trait Protocol {
    /// The node type this protocol drives.
    type Node: Node;

    /// Human-readable protocol name for reports and tables.
    fn name(&self) -> String;

    /// Creates the node with identity `id` knowing the replicas in
    /// `known` (the scenario's topology row, self excluded).
    /// `online_at_start` reports the node's availability at round 0 so
    /// protocols with warm-up state (e.g. the paper peer's confidence
    /// flag) can initialise accordingly.
    fn spawn(&self, id: PeerId, known: Vec<PeerId>, online_at_start: bool) -> Self::Node;

    /// Initiates the scheduled `event` at `node`, returning the update's
    /// identity and writing the round-0 effects to inject into `out`.
    /// Protocols without a data model (pure dissemination baselines)
    /// derive the identity from [`UpdateEvent::rumor_id`] and ignore the
    /// payload semantics.
    fn initiate(
        &self,
        node: &mut Self::Node,
        event: &UpdateEvent,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<<Self::Node as Node>::Msg>,
    ) -> UpdateId;

    /// Whether `node` has learned of `update`.
    fn is_aware(&self, node: &Self::Node, update: UpdateId) -> bool;

    /// Messages this protocol counts toward the paper's overhead metric
    /// at `node` (e.g. push messages for the paper peer). Defaults to 0
    /// for protocols whose engine-level total is the only meaningful
    /// count.
    fn protocol_messages(&self, node: &Self::Node) -> u64 {
        let _ = node;
        0
    }

    /// The wire sizer for this protocol's message type — a pure function
    /// returning a message's encoded frame size (typically
    /// `rumor_wire::frame_len::<Msg>`). When `Some`, the driver installs
    /// it into the engine so every run also reports bandwidth
    /// ([`EngineStats::bytes_sent`], [`RunReport::total_bytes`]). The
    /// default `None` disables byte accounting for message types without
    /// a wire codec.
    fn wire_sizer(&self) -> Option<WireSizer<<Self::Node as Node>::Msg>> {
        None
    }

    /// The digest-lie transform a Byzantine host applies to this
    /// protocol's outgoing messages (see [`MsgTamper`]). The default
    /// `None` means the protocol defines no typed lie — Byzantine
    /// members of such a protocol can still replay stale frames and
    /// push corrupt ones, which need no message-type knowledge.
    fn byzantine_liar(&self) -> Option<MsgTamper<<Self::Node as Node>::Msg>> {
        None
    }

    /// The trace message classifier for this protocol's message type —
    /// a pure function mapping a message to the coarse
    /// [`MsgKind`] stamped on send/deliver trace events. Consulted only
    /// while a tracer is enabled; the default `None` stamps
    /// [`MsgKind::Other`].
    fn trace_msg_kind(&self) -> Option<MsgKinder<<Self::Node as Node>::Msg>> {
        None
    }
}

/// The paper's hybrid push/pull protocol as a [`Protocol`] factory:
/// spawns [`ReplicaPeer`]s, initiates real writes and tombstones, and
/// probes awareness via the processed-update set.
#[derive(Debug, Clone)]
pub struct PaperProtocol {
    config: rumor_core::ProtocolConfig,
}

impl PaperProtocol {
    /// Creates the factory from a validated protocol configuration.
    pub fn new(config: rumor_core::ProtocolConfig) -> Self {
        Self { config }
    }

    /// The protocol configuration every spawned peer receives.
    pub fn config(&self) -> &rumor_core::ProtocolConfig {
        &self.config
    }
}

impl Protocol for PaperProtocol {
    type Node = ReplicaPeer;

    fn name(&self) -> String {
        "hybrid push/pull (paper)".to_owned()
    }

    fn spawn(&self, id: PeerId, known: Vec<PeerId>, online_at_start: bool) -> ReplicaPeer {
        let mut peer = ReplicaPeer::new(id, self.config.clone());
        peer.learn_replicas(known);
        if !online_at_start {
            peer.set_initially_offline();
        }
        peer
    }

    fn initiate(
        &self,
        node: &mut ReplicaPeer,
        event: &UpdateEvent,
        round: Round,
        rng: &mut ChaCha8Rng,
        out: &mut EffectSink<rumor_core::Message>,
    ) -> UpdateId {
        let value = if event.delete {
            None // a tombstone: the §3 death certificate
        } else {
            Some(Value::from(event.payload().as_str()))
        };
        node.initiate_update(event.key, value, round, rng, out).id()
    }

    fn is_aware(&self, node: &ReplicaPeer, update: UpdateId) -> bool {
        node.has_processed(update)
    }

    fn protocol_messages(&self, node: &ReplicaPeer) -> u64 {
        node.stats().push_messages_sent
    }

    fn wire_sizer(&self) -> Option<fn(&rumor_core::Message) -> usize> {
        Some(rumor_wire::frame_len::<rumor_core::Message>)
    }

    fn trace_msg_kind(&self) -> Option<fn(&rumor_core::Message) -> MsgKind> {
        Some(|msg| match msg {
            rumor_core::Message::Push(_) => MsgKind::Push,
            rumor_core::Message::PullRequest { .. } => MsgKind::PullRequest,
            rumor_core::Message::PullResponse { .. } => MsgKind::PullResponse,
            rumor_core::Message::Ack { .. } => MsgKind::Ack,
            rumor_core::Message::PullSince { .. } => MsgKind::DeltaRequest,
            rumor_core::Message::DeltaResponse { .. } => MsgKind::DeltaResponse,
        })
    }

    fn byzantine_liar(&self) -> Option<MsgTamper<rumor_core::Message>> {
        // The paper's pull phase is the repair channel: an offline-again
        // replica hands its version digest to a peer and trusts the
        // missing-updates answer. The liar betrays exactly that trust —
        // it swears the digest is complete by emptying its pull
        // responses, starving pull-based repair while leaving its own
        // push traffic (which would incriminate nothing) intact.
        Some(|msg| match msg {
            rumor_core::Message::PullResponse { updates } if !updates.is_empty() => {
                Some(rumor_core::Message::PullResponse {
                    updates: Vec::new(),
                })
            }
            rumor_core::Message::DeltaResponse { upto, updates } if !updates.is_empty() => {
                // The wire-v2 delta pull trusts the same answer — and
                // worse, believes the `upto` mark, so the lie also
                // advances the victim's sync cursor past the withheld
                // updates.
                Some(rumor_core::Message::DeltaResponse {
                    upto: *upto,
                    updates: Vec::new(),
                })
            }
            _ => None,
        })
    }
}

/// Drives any population of [`Node`]s in synchronous rounds under churn,
/// link faults and an update workload — the single round loop behind
/// `Simulation` and `BaselineSim`.
///
/// Build one by mounting a [`Protocol`] into a
/// [`Scenario`](crate::Scenario) via [`Scenario::drive`](crate::Scenario::drive).
pub struct Driver<N: Node, T = NopTracer> {
    nodes: Vec<N>,
    online: OnlineSet,
    churn: Box<dyn Churn>,
    engine: SyncEngine<N::Msg, T>,
    filter: Box<dyn LinkFilter>,
    proto_rng: ChaCha8Rng,
    churn_rng: ChaCha8Rng,
    convergence: ConvergenceSpec,
    initial_online: usize,
    rounds_run: u32,
    /// Scratch sink for out-of-round effect injection (initiations).
    sink: EffectSink<N::Msg>,
    /// Dense per-trace update indices, in initiation order; populated
    /// only while a tracer is enabled.
    traced_updates: Vec<UpdateId>,
}

impl<N: Node, T> std::fmt::Debug for Driver<N, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Driver")
            .field("population", &self.nodes.len())
            .field("online", &self.online.online_count())
            .field("rounds_run", &self.rounds_run)
            .finish_non_exhaustive()
    }
}

impl<N: Node> Driver<N> {
    /// Assembles an untraced driver from fully-constructed parts. Most
    /// callers should go through
    /// [`Scenario::drive`](crate::Scenario::drive); this is the
    /// low-level mount point for wrappers that manage their own random
    /// streams (e.g. `BaselineSim`'s legacy constructor).
    pub fn assemble(
        nodes: Vec<N>,
        online: OnlineSet,
        churn: Box<dyn Churn>,
        filter: Box<dyn LinkFilter>,
        proto_rng: ChaCha8Rng,
        churn_rng: ChaCha8Rng,
        convergence: ConvergenceSpec,
    ) -> Self {
        Self::assemble_traced(
            nodes,
            online,
            churn,
            filter,
            proto_rng,
            churn_rng,
            convergence,
            NopTracer,
        )
    }
}

impl<N: Node, T: Tracer> Driver<N, T> {
    /// Assembles a driver whose engine captures structured events into
    /// `tracer`. Tracing consumes no randomness: the traced run is
    /// bit-identical to the untraced one.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_traced(
        nodes: Vec<N>,
        online: OnlineSet,
        churn: Box<dyn Churn>,
        filter: Box<dyn LinkFilter>,
        proto_rng: ChaCha8Rng,
        churn_rng: ChaCha8Rng,
        convergence: ConvergenceSpec,
        tracer: T,
    ) -> Self {
        let population = nodes.len();
        let initial_online = online.online_count();
        Self {
            nodes,
            online,
            churn,
            engine: SyncEngine::with_tracer(population, tracer),
            filter,
            proto_rng,
            churn_rng,
            convergence,
            initial_online,
            rounds_run: 0,
            sink: EffectSink::new(),
            traced_updates: Vec::new(),
        }
    }

    /// The engine's tracer.
    pub fn tracer(&self) -> &T {
        self.engine.tracer()
    }

    /// Mutable access to the engine's tracer (e.g. to drain a
    /// [`rumor_obs::MemTracer`] capture).
    pub fn tracer_mut(&mut self) -> &mut T {
        self.engine.tracer_mut()
    }

    /// Consumes the driver, returning the tracer with its capture.
    pub fn into_tracer(self) -> T {
        self.engine.into_tracer()
    }

    /// The dense trace index of `update`, assigning the next one on
    /// first sight (indices follow initiation order).
    fn trace_update_index(&mut self, update: UpdateId) -> u32 {
        match self.traced_updates.iter().position(|&u| u == update) {
            Some(i) => i as u32,
            None => {
                self.traced_updates.push(update);
                (self.traced_updates.len() - 1) as u32
            }
        }
    }

    /// Total population size `R`.
    pub fn population(&self) -> usize {
        self.nodes.len()
    }

    /// The current availability state.
    pub fn online(&self) -> &OnlineSet {
        &self.online
    }

    /// Read access to one node.
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the population.
    pub fn node(&self, id: PeerId) -> &N {
        &self.nodes[id.index()]
    }

    /// All nodes, for whole-population assertions.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Rounds executed so far.
    pub fn rounds_run(&self) -> u32 {
        self.rounds_run
    }

    /// The number of nodes online when the driver started (`R_on(0)`).
    pub fn initial_online(&self) -> usize {
        self.initial_online
    }

    /// The convergence criterion used by [`Driver::track_update`].
    pub fn convergence(&self) -> ConvergenceSpec {
        self.convergence
    }

    /// Engine-level message accounting so far.
    pub fn stats(&self) -> &EngineStats {
        self.engine.stats()
    }

    /// Total messages sent so far (the paper's overhead metric counts
    /// sends whether or not the target was online).
    pub fn messages(&self) -> u64 {
        self.engine.stats().sent
    }

    /// Encoded wire bytes of every message sent so far (0 when the
    /// mounted protocol provides no [`Protocol::wire_sizer`]).
    pub fn bytes_sent(&self) -> u64 {
        self.engine.stats().bytes_sent
    }

    /// Installs (or clears) the engine's message sizer. Normally set
    /// automatically by [`Scenario::drive`](crate::Scenario::drive) from
    /// [`Protocol::wire_sizer`]; exposed for wrappers assembling drivers
    /// by hand.
    pub fn set_msg_sizer(&mut self, sizer: Option<fn(&N::Msg) -> usize>) {
        self.engine.set_msg_sizer(sizer);
    }

    /// Installs (or clears) the engine's trace message classifier.
    /// Normally set automatically by
    /// [`Scenario::drive`](crate::Scenario::drive) from
    /// [`Protocol::trace_msg_kind`]; consulted only while a tracer is
    /// enabled.
    pub fn set_msg_kind(&mut self, kinder: Option<fn(&N::Msg) -> MsgKind>) {
        self.engine.set_msg_kind(kinder);
    }

    /// Messages per initially-online node.
    pub fn messages_per_initial_online(&self) -> f64 {
        if self.initial_online == 0 {
            0.0
        } else {
            self.messages() as f64 / self.initial_online as f64
        }
    }

    /// True when no message is in flight and no timer is pending.
    pub fn is_quiescent(&self) -> bool {
        self.engine.is_quiescent()
    }

    /// Replaces the churn model (pre-run configuration hook).
    pub fn set_churn(&mut self, churn: Box<dyn Churn>) {
        self.churn = churn;
    }

    /// Forces a node's availability (test/fault-injection hook). The
    /// change takes effect at the next round's status-change scan.
    pub fn set_online(&mut self, peer: PeerId, online: bool) {
        self.online.set_online(peer, online);
    }

    /// Samples a random online node from the protocol stream.
    pub fn sample_online(&mut self) -> Option<PeerId> {
        self.online.sample_online(&mut self.proto_rng)
    }

    /// Samples up to `k` *distinct* online nodes (paper §4.4: a client
    /// queries distinct peers). Returns fewer when fewer are online.
    pub fn sample_online_distinct(&mut self, k: usize) -> Vec<PeerId> {
        let mut pool: Vec<PeerId> = self.online.iter_online().collect();
        let take = k.min(pool.len());
        // Partial Fisher–Yates: k draws, not a full shuffle of the pool.
        for i in 0..take {
            let j = rand::Rng::gen_range(&mut self.proto_rng, i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(take);
        pool
    }

    /// Runs `f` against one node with the protocol RNG and a scratch
    /// [`EffectSink`], injecting the effects it writes (e.g. an
    /// initiator's round-0 broadcast) and passing its output through.
    ///
    /// # Panics
    ///
    /// Panics if `at` is outside the population.
    pub fn apply<R>(
        &mut self,
        at: PeerId,
        f: impl FnOnce(&mut N, &mut ChaCha8Rng, &mut EffectSink<N::Msg>) -> R,
    ) -> R {
        let mut sink = std::mem::take(&mut self.sink);
        let out = f(&mut self.nodes[at.index()], &mut self.proto_rng, &mut sink);
        self.engine.inject(at, sink.drain());
        self.sink = sink;
        out
    }

    /// Initiates `event` at `initiator` (or a random online node),
    /// injecting the protocol's round-0 effects. Returns `None` when no
    /// initiator was given and nobody is online.
    pub fn initiate<P: Protocol<Node = N>>(
        &mut self,
        protocol: &P,
        initiator: Option<PeerId>,
        event: &UpdateEvent,
    ) -> Option<UpdateId> {
        let id = initiator.or_else(|| self.sample_online())?;
        let round = Round::new(self.rounds_run);
        let mut sink = std::mem::take(&mut self.sink);
        let update = protocol.initiate(
            &mut self.nodes[id.index()],
            event,
            round,
            &mut self.proto_rng,
            &mut sink,
        );
        if self.engine.tracer().is_enabled() {
            let index = self.trace_update_index(update);
            self.engine.tracer_mut().record(
                round.as_u32(),
                id.as_u32(),
                EventKind::Initiate { update: index },
            );
        }
        self.engine.inject(id, sink.drain());
        self.sink = sink;
        Some(update)
    }

    /// Executes one synchronous round: churn transition (after round 0),
    /// then the engine round.
    pub fn step(&mut self) {
        if self.rounds_run > 0 {
            self.churn
                .step(self.rounds_run - 1, &mut self.online, &mut self.churn_rng);
        }
        self.engine.step(
            &mut self.nodes,
            &self.online,
            &self.filter,
            &mut self.proto_rng,
        );
        self.rounds_run += 1;
    }

    /// Runs `n` rounds.
    pub fn run_rounds(&mut self, n: u32) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs until the engine is quiescent (no message in flight, no timer
    /// pending) or `max_rounds` have elapsed; returns rounds executed.
    pub fn run_until_quiescent(&mut self, max_rounds: u32) -> u32 {
        let start = self.rounds_run;
        while !self.engine.is_quiescent() && self.rounds_run - start < max_rounds {
            self.step();
        }
        self.rounds_run - start
    }

    /// Fraction of *online* nodes satisfying `aware`.
    pub fn aware_fraction(&self, aware: impl Fn(&N) -> bool) -> f64 {
        let online = self.online.online_count();
        if online == 0 {
            return 0.0;
        }
        let count = self
            .online
            .iter_online()
            .filter(|p| aware(&self.nodes[p.index()]))
            .count();
        count as f64 / online as f64
    }

    /// Fraction of the *entire* population (offline included) satisfying
    /// `aware`.
    pub fn aware_fraction_total(&self, aware: impl Fn(&N) -> bool) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let count = self.nodes.iter().filter(|n| aware(n)).count();
        count as f64 / self.nodes.len() as f64
    }

    fn protocol_messages<P: Protocol<Node = N>>(&self, protocol: &P) -> u64 {
        self.nodes
            .iter()
            .map(|n| protocol.protocol_messages(n))
            .sum()
    }

    fn observe<P: Protocol<Node = N>>(&self, protocol: &P, update: UpdateId) -> RoundObservation {
        let online = self.online.online_count();
        let aware_online = self
            .online
            .iter_online()
            .filter(|p| protocol.is_aware(&self.nodes[p.index()], update))
            .count();
        RoundObservation {
            round: self.rounds_run - 1,
            online,
            aware_online,
            f_aware: if online == 0 {
                0.0
            } else {
                aware_online as f64 / online as f64
            },
            cum_messages: self.engine.stats().sent,
            cum_push_messages: self.protocol_messages(protocol),
        }
    }

    /// Drives rounds until the propagation of `update` quiesces (or
    /// awareness stalls per the driver's [`ConvergenceSpec`]), recording
    /// per-round observations. This is the figure-reproduction workhorse,
    /// protocol-agnostic: mount any [`Protocol`] and compare trajectories
    /// apples-to-apples.
    pub fn track_update<P: Protocol<Node = N>>(
        &mut self,
        protocol: &P,
        update: UpdateId,
        max_rounds: u32,
    ) -> RunReport {
        let mut per_round = Vec::new();
        let c = self.convergence;
        let mut detector = ConvergenceDetector::new(c.epsilon, c.patience, c.target);
        let start_round = self.rounds_run;
        // Per-node awareness snapshot for first-awareness trace events;
        // nodes already aware before tracking (the initiator) emit no
        // `Aware` event — their `Initiate` marks them.
        let tracing = self.engine.tracer().is_enabled();
        let mut aware_snapshot = vec![false; if tracing { self.nodes.len() } else { 0 }];
        let trace_index = if tracing {
            Some(self.trace_update_index(update))
        } else {
            None
        };
        if tracing {
            for (i, node) in self.nodes.iter().enumerate() {
                aware_snapshot[i] = protocol.is_aware(node, update);
            }
        }
        while self.rounds_run - start_round < max_rounds {
            if self.engine.is_quiescent() && self.rounds_run > start_round {
                break;
            }
            self.step();
            let obs = self.observe(protocol, update);
            if let Some(index) = trace_index {
                let executed = self.rounds_run - 1;
                for (i, aware) in aware_snapshot.iter_mut().enumerate() {
                    if !*aware && protocol.is_aware(&self.nodes[i], update) {
                        *aware = true;
                        self.engine.tracer_mut().record(
                            executed,
                            i as u32,
                            EventKind::Aware { update: index },
                        );
                    }
                }
                self.engine.tracer_mut().record(
                    executed,
                    CONDUCTOR,
                    EventKind::Probe {
                        online: obs.online as u32,
                        aware: obs.aware_online as u32,
                    },
                );
            }
            let f_aware = obs.f_aware;
            per_round.push(obs);
            if detector.observe(f_aware) {
                break;
            }
        }
        RunReport {
            rounds: self.rounds_run - start_round,
            aware_online_fraction: self.aware_fraction(|n| protocol.is_aware(n, update)),
            aware_total_fraction: self.aware_fraction_total(|n| protocol.is_aware(n, update)),
            protocol_messages: self.protocol_messages(protocol),
            total_messages: self.engine.stats().sent,
            total_bytes: self.engine.stats().bytes_sent,
            total_wasted: self.engine.stats().wasted(),
            initial_online: self.initial_online,
            per_round,
            per_round_sent: self.engine.stats().per_round_sent().clone(),
        }
    }

    /// Executes a scheduled update workload (writes **and** tombstones)
    /// through the mounted protocol, tracking per-update awareness.
    ///
    /// Events fire at their scheduled round relative to the start of this
    /// call; an event whose round arrives while nobody is online is
    /// retried each following round (and counted in
    /// [`WorkloadReport::dropped_events`] if the horizon ends first).
    /// After the last scheduled round the driver keeps running for
    /// `settle_rounds` so pulls and stragglers can catch up.
    ///
    /// An update is *converged* at the first round where the online-aware
    /// fraction reaches the driver's [`ConvergenceSpec::target`].
    pub fn run_workload<P: Protocol<Node = N>>(
        &mut self,
        protocol: &P,
        events: &[UpdateEvent],
        settle_rounds: u32,
    ) -> WorkloadReport {
        let start_round = self.rounds_run;
        let messages_before = self.engine.stats().sent;
        let mut schedule: Vec<&UpdateEvent> = events.iter().collect();
        schedule.sort_by_key(|e| (e.round, e.sequence));
        let horizon = schedule.last().map_or(0, |e| e.round + 1) + settle_rounds;
        let target = self.convergence.target;

        let mut next = 0usize;
        let mut deferred: Vec<&UpdateEvent> = Vec::new();
        let mut outcomes: Vec<UpdateOutcome> = Vec::new();
        for rel in 0..horizon {
            let mut due = std::mem::take(&mut deferred);
            while next < schedule.len() && schedule[next].round <= rel {
                due.push(schedule[next]);
                next += 1;
            }
            for event in due {
                match self.initiate(protocol, None, event) {
                    Some(update) => outcomes.push(UpdateOutcome {
                        update,
                        key: event.key,
                        delete: event.delete,
                        sequence: event.sequence,
                        initiated_round: self.rounds_run,
                        converged_round: None,
                        final_aware_online: 0.0,
                        final_aware_total: 0.0,
                    }),
                    None => deferred.push(event),
                }
            }
            self.step();
            let executed = self.rounds_run - 1;
            for outcome in outcomes.iter_mut().filter(|o| o.converged_round.is_none()) {
                let f = self.aware_fraction(|n| protocol.is_aware(n, outcome.update));
                if f >= target {
                    outcome.converged_round = Some(executed);
                }
            }
        }
        for outcome in &mut outcomes {
            outcome.final_aware_online =
                self.aware_fraction(|n| protocol.is_aware(n, outcome.update));
            outcome.final_aware_total =
                self.aware_fraction_total(|n| protocol.is_aware(n, outcome.update));
        }
        WorkloadReport {
            rounds: self.rounds_run - start_round,
            messages: self.engine.stats().sent - messages_before,
            initial_online: self.initial_online,
            dropped_events: deferred.len() + (schedule.len() - next),
            updates: outcomes,
        }
    }
}
