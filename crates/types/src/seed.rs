//! Deterministic seed derivation for reproducible experiments.
//!
//! Every stochastic component in the workspace (churn, peer selection,
//! latency, workload arrivals) takes its own RNG seeded from a single
//! experiment seed through [`derive_seed`]/[`SeedSequence`]. Re-running an
//! experiment with the same top-level seed therefore reproduces every
//! message, churn event and random choice bit-for-bit.

use serde::{Deserialize, Serialize};

/// Derives an independent child seed from a parent seed and a textual label.
///
/// The derivation is a SplitMix64-style avalanche over the parent seed and
/// an FNV-1a hash of the label, which is cheap, stable across platforms and
/// good enough to decorrelate RNG streams (the streams themselves come from
/// ChaCha, which does the heavy lifting).
///
/// # Examples
///
/// ```
/// use rumor_types::derive_seed;
/// let churn = derive_seed(42, "churn");
/// let net = derive_seed(42, "net");
/// assert_ne!(churn, net);
/// assert_eq!(churn, derive_seed(42, "churn"));
/// ```
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(parent ^ h)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A stateful stream of derived seeds, for components that need one seed
/// per entity (for example one RNG per replica).
///
/// # Examples
///
/// ```
/// use rumor_types::SeedSequence;
/// let mut seq = SeedSequence::new(7, "peers");
/// let a = seq.next_seed();
/// let b = seq.next_seed();
/// assert_ne!(a, b);
///
/// let mut again = SeedSequence::new(7, "peers");
/// assert_eq!(again.next_seed(), a, "sequences replay deterministically");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedSequence {
    base: u64,
    counter: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `parent` and namespaced by `label`.
    pub fn new(parent: u64, label: &str) -> Self {
        Self {
            base: derive_seed(parent, label),
            counter: 0,
        }
    }

    /// Returns the next seed in the sequence.
    pub fn next_seed(&mut self) -> u64 {
        let s = splitmix64(
            self.base
                .wrapping_add(self.counter.wrapping_mul(0x9e37_79b9)),
        );
        self.counter += 1;
        s
    }

    /// Returns the seed at a given index without advancing the sequence.
    pub fn seed_at(&self, index: u64) -> u64 {
        splitmix64(self.base.wrapping_add(index.wrapping_mul(0x9e37_79b9)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_depends_on_label() {
        assert_ne!(derive_seed(1, "a"), derive_seed(1, "b"));
    }

    #[test]
    fn derive_seed_depends_on_parent() {
        assert_ne!(derive_seed(1, "a"), derive_seed(2, "a"));
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(123, "x"), derive_seed(123, "x"));
    }

    #[test]
    fn sequence_matches_indexing() {
        let mut seq = SeedSequence::new(9, "s");
        let direct = SeedSequence::new(9, "s");
        for i in 0..16 {
            assert_eq!(seq.next_seed(), direct.seed_at(i));
        }
    }

    #[test]
    fn sequence_values_distinct_over_prefix() {
        let mut seq = SeedSequence::new(11, "q");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(seq.next_seed()), "collision in first 1000");
        }
    }

    #[test]
    fn splitmix_nonzero_avalanche() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
