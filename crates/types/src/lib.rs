//! Foundational identifier and time types shared by every `rumor` crate.
//!
//! The update algorithm of Datta et al. (ICDCS 2003) is expressed over
//! *logical* entities only: replicas, rounds, data keys and update versions.
//! This crate defines those vocabulary types once so that the protocol core,
//! the churn and network substrates, the simulator and the experiment
//! harness all speak the same language without depending on each other.
//!
//! # Examples
//!
//! ```
//! use rumor_types::{PeerId, Round};
//!
//! let p = PeerId::new(7);
//! let r = Round::ZERO.next();
//! assert_eq!(p.index(), 7);
//! assert_eq!(r.as_u32(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ids;
mod seed;
mod time;

pub use ids::{DataKey, PeerId, UpdateId, VersionId};
pub use seed::{derive_seed, SeedSequence};
pub use time::{Round, Tick};
