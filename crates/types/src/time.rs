//! Logical time: push rounds and fine-grained simulation ticks.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A push round (the paper's `t`).
///
/// The paper is careful to note (§4.1) that `t` "needs to be interpreted as
/// the round number" rather than wall-clock time: messages from different
/// rounds may coexist in a real network. All analysis and the synchronous
/// simulator advance in these discrete rounds.
///
/// # Examples
///
/// ```
/// use rumor_types::Round;
/// let mut r = Round::ZERO;
/// r = r.next();
/// assert_eq!(r, Round::new(1));
/// assert_eq!(r + 2, Round::new(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Round(u32);

impl Round {
    /// The first push round (the initiator's send happens in round 0).
    pub const ZERO: Self = Self(0);

    /// Creates a round from its number.
    pub const fn new(n: u32) -> Self {
        Self(n)
    }

    /// Returns the round number.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the round number as a `usize`, for indexing round series.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The round after this one.
    #[must_use]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round {}", self.0)
    }
}

impl Add<u32> for Round {
    type Output = Round;
    fn add(self, rhs: u32) -> Round {
        Round(self.0 + rhs)
    }
}

impl AddAssign<u32> for Round {
    fn add_assign(&mut self, rhs: u32) {
        self.0 += rhs;
    }
}

impl Sub<Round> for Round {
    type Output = u32;
    fn sub(self, rhs: Round) -> u32 {
        self.0.saturating_sub(rhs.0)
    }
}

/// A fine-grained logical timestamp used by the event-driven engine.
///
/// Ticks are dimensionless; the event engine's latency models decide how
/// many ticks a message takes. One push round corresponds to roughly one
/// network delay (paper §4.1), so engines map rounds onto tick windows.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tick(u64);

impl Tick {
    /// Time zero.
    pub const ZERO: Self = Self(0);

    /// Creates a tick from a raw count.
    pub const fn new(t: u64) -> Self {
        Self(t)
    }

    /// Returns the raw count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns this tick advanced by `delta`.
    #[must_use]
    pub const fn advance(self, delta: u64) -> Self {
        Self(self.0 + delta)
    }

    /// Saturating difference between two ticks.
    #[must_use]
    pub const fn saturating_since(self, earlier: Tick) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl Add<u64> for Tick {
    type Output = Tick;
    fn add(self, rhs: u64) -> Tick {
        Tick(self.0 + rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_next_increments() {
        assert_eq!(Round::ZERO.next().as_u32(), 1);
    }

    #[test]
    fn round_add_and_sub() {
        let r = Round::new(5);
        assert_eq!(r + 3, Round::new(8));
        assert_eq!(Round::new(8) - r, 3);
        assert_eq!(r - Round::new(8), 0, "subtraction saturates");
    }

    #[test]
    fn round_default_is_zero() {
        assert_eq!(Round::default(), Round::ZERO);
    }

    #[test]
    fn tick_advance() {
        let t = Tick::ZERO.advance(10);
        assert_eq!(t.as_u64(), 10);
        assert_eq!((t + 5).as_u64(), 15);
        assert_eq!(t.saturating_since(Tick::new(3)), 7);
        assert_eq!(Tick::new(3).saturating_since(t), 0);
    }

    #[test]
    fn displays_mention_value() {
        assert!(format!("{}", Round::new(4)).contains('4'));
        assert!(format!("{}", Tick::new(9)).contains('9'));
    }
}
