//! Compact newtype identifiers for peers, data items, updates and versions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a replica peer within a population.
///
/// Peers are numbered densely from `0` so that simulators can index
/// per-peer state with plain vectors. The paper calls the full set of
/// replicas `R`; a `PeerId` names one element of that set.
///
/// # Examples
///
/// ```
/// use rumor_types::PeerId;
/// let p = PeerId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(format!("{p}"), "peer-3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerId(u32);

impl PeerId {
    /// Creates a peer identifier from its dense index.
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index of the peer (usable as a vector index).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer-{}", self.0)
    }
}

impl From<u32> for PeerId {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

/// Identifier of a replicated data item (the paper's update subject `U`).
///
/// In a deployed system this would be a key in the P-Grid key space; in the
/// reproduction it is an opaque 64-bit value, typically a hash of an
/// application-level name.
///
/// # Examples
///
/// ```
/// use rumor_types::DataKey;
/// let k = DataKey::from_name("calendar/2026-06-09");
/// assert_eq!(k, DataKey::from_name("calendar/2026-06-09"));
/// assert_ne!(k, DataKey::from_name("calendar/2026-06-10"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DataKey(u64);

impl DataKey {
    /// Creates a key from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Derives a key from an application-level name using FNV-1a.
    ///
    /// The hash only needs to be stable and well-distributed; it is not
    /// cryptographic (the paper's version identifiers are where uniqueness
    /// matters, see [`VersionId`]).
    pub fn from_name(name: &str) -> Self {
        Self(fnv1a(name.as_bytes()))
    }

    /// Returns the raw 64-bit value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DataKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key-{:016x}", self.0)
    }
}

impl From<u64> for DataKey {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

/// Universally-unique identifier of a single *version* of a data item.
///
/// Paper, footnote 1: version identifiers are "universally unique
/// identifiers computed locally by applying a cryptographically secure hash
/// function to the concatenated values of the current date and time, the
/// current IP address and a large random number". The reproduction draws
/// 128 random bits from a seeded generator instead (see `DESIGN.md` §4):
/// only uniqueness matters, and determinism keeps experiments replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VersionId(u128);

impl VersionId {
    /// Creates a version identifier from raw bits.
    pub const fn from_bits(bits: u128) -> Self {
        Self(bits)
    }

    /// Returns the raw 128 bits.
    pub const fn to_bits(self) -> u128 {
        self.0
    }
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:032x}", self.0)
    }
}

/// Identifier of one update *event* (an `(U, V)` pair in flight).
///
/// Two pushes carry the same `UpdateId` exactly when they disseminate the
/// same new version of the same data item, which is what "any replica
/// pushes the update at most once" (paper §3) is keyed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UpdateId(u128);

impl UpdateId {
    /// Creates an update identifier from raw bits.
    pub const fn from_bits(bits: u128) -> Self {
        Self(bits)
    }

    /// Returns the raw 128 bits.
    pub const fn to_bits(self) -> u128 {
        self.0
    }

    /// Derives the update identifier for a key/version pair.
    pub fn for_version(key: DataKey, version: VersionId) -> Self {
        let mixed = (version.to_bits()).wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835)
            ^ u128::from(key.as_u64());
        Self(mixed)
    }
}

impl fmt::Display for UpdateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{:032x}", self.0)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_id_roundtrip() {
        let p = PeerId::new(42);
        assert_eq!(p.index(), 42);
        assert_eq!(p.as_u32(), 42);
        assert_eq!(PeerId::from(42u32), p);
    }

    #[test]
    fn peer_id_ordering_follows_index() {
        assert!(PeerId::new(1) < PeerId::new(2));
    }

    #[test]
    fn data_key_from_name_is_stable() {
        assert_eq!(DataKey::from_name("abc"), DataKey::from_name("abc"));
        assert_ne!(DataKey::from_name("abc"), DataKey::from_name("abd"));
    }

    #[test]
    fn data_key_display_is_nonempty() {
        assert!(!format!("{}", DataKey::new(0)).is_empty());
    }

    #[test]
    fn update_id_mixes_key_and_version() {
        let v = VersionId::from_bits(7);
        let a = UpdateId::for_version(DataKey::new(1), v);
        let b = UpdateId::for_version(DataKey::new(2), v);
        assert_ne!(a, b);
    }

    #[test]
    fn update_id_same_inputs_same_id() {
        let v = VersionId::from_bits(99);
        let k = DataKey::new(5);
        assert_eq!(UpdateId::for_version(k, v), UpdateId::for_version(k, v));
    }

    #[test]
    fn displays_are_distinct() {
        let v = VersionId::from_bits(1);
        let u = UpdateId::from_bits(1);
        assert_ne!(format!("{v}"), format!("{u}"));
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
