//! Bulletin-board scenario (§2's motivating workload): a stream of news
//! items published by random peers under heavy churn, with staleness and
//! query-correctness measurements.
//!
//! Run with: `cargo run --example news_flash`

use rumor::churn::MarkovChurn;
use rumor::core::{ForwardPolicy, ProtocolConfig, PullStrategy, QueryPolicy, Value};
use rumor::sim::{SimulationBuilder, WorkloadBuilder};
use rumor::types::PeerId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let population = 800;
    let config = ProtocolConfig::builder(population)
        .fanout_fraction(0.03)
        .forward(ForwardPolicy::self_tuning_default())
        .pull_strategy(PullStrategy::Eager)
        .staleness_rounds(40) // no_updates_since trigger (§3)
        .build()?;

    let mut sim = SimulationBuilder::new(population, 7)
        .online_fraction(0.25)
        .churn(MarkovChurn::new(0.97, 0.01)?)
        .protocol(config)
        .build()?;

    // A Poisson stream of news posts over four topics.
    let workload = WorkloadBuilder::new(99)
        .keys(&["news/tech", "news/science", "news/sports", "news/music"])
        .rate_per_round(0.15)
        .rounds(120)
        .generate();
    println!("publishing {} news items over 120 rounds…", workload.len());

    let mut published = Vec::new();
    let mut event_iter = workload.into_iter().peekable();
    for round in 0..120 {
        while event_iter.peek().is_some_and(|e| e.round == round) {
            let event = event_iter.next().expect("peeked");
            let body = format!("story #{} in {}", event.sequence, event.key);
            let update = sim.initiate_update(None, event.key, Some(Value::from(body.as_str())));
            published.push((round, update));
        }
        sim.step();
    }
    // Let the dust settle: pulls repair peers that returned late.
    sim.run_rounds(30);

    // How fresh is the board? Check the latest story per topic via
    // majority queries.
    println!("\nfinal state:");
    for topic in ["news/tech", "news/science", "news/sports", "news/music"] {
        let key = rumor::types::DataKey::from_name(topic);
        let latest = published
            .iter()
            .rev()
            .find(|(_, u)| u.key() == key)
            .map(|(_, u)| u);
        let answer = sim.query(key, 7, QueryPolicy::Majority);
        match (latest, answer) {
            (Some(want), Some(got)) => {
                let got_head = got.lineage.as_ref().map(rumor::core::Lineage::head);
                let fresh = got_head == Some(want.lineage().head());
                println!(
                    "  {topic:<14} majority answer {} the newest story",
                    if fresh { "IS" } else { "is NOT" }
                );
            }
            (Some(_), None) => println!("  {topic:<14} no replica answered"),
            (None, _) => println!("  {topic:<14} nothing was published"),
        }
    }

    // Population-wide staleness for the busiest topic.
    let key = rumor::types::DataKey::from_name("news/tech");
    if let Some((_, newest)) = published.iter().rev().find(|(_, u)| u.key() == key) {
        let head = newest.lineage().head();
        let (mut current, mut online_total) = (0usize, 0usize);
        for i in 0..population as u32 {
            let p = PeerId::new(i);
            if !sim.online().is_online(p) {
                continue;
            }
            online_total += 1;
            if sim
                .peer(p)
                .store()
                .latest(key)
                .is_some_and(|v| v.lineage().head() == head)
            {
                current += 1;
            }
        }
        println!(
            "\nnews/tech: {current}/{online_total} online replicas hold the newest version ({:.1}%)",
            current as f64 / online_total.max(1) as f64 * 100.0
        );
    }

    let report = sim.report();
    println!("\ntraffic: {}", report.engine);
    println!("peer counters: {}", report.peers);
    Ok(())
}
