//! Bulletin-board scenario (§2's motivating workload): a stream of news
//! items published by random peers under heavy churn, executed through
//! the declarative `Scenario` + `run_workload` pipeline with per-update
//! convergence tracking, then cross-checked with majority queries.
//!
//! Run with: `cargo run --example news_flash`

use rumor::churn::MarkovChurn;
use rumor::core::{ForwardPolicy, ProtocolConfig, PullStrategy, QueryPolicy};
use rumor::sim::{Scenario, WorkloadBuilder};

const TOPICS: [&str; 4] = ["news/tech", "news/science", "news/sports", "news/music"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let population = 800;

    // A Poisson stream of news posts over four topics.
    let workload = WorkloadBuilder::new(99)
        .keys(&TOPICS)
        .rate_per_round(0.15)
        .rounds(120)
        .generate();
    println!("publishing {} news items over 120 rounds…", workload.len());

    // The environment: 25% online under churn, with the schedule attached.
    let scenario = Scenario::builder(population, 7)
        .online_fraction(0.25)
        .churn(MarkovChurn::new(0.97, 0.01)?)
        .workload(workload.clone())
        .build()?;

    let config = ProtocolConfig::builder(population)
        .fanout_fraction(0.03)
        .forward(ForwardPolicy::self_tuning_default())
        .pull_strategy(PullStrategy::Eager)
        .staleness_rounds(40) // no_updates_since trigger (§3)
        .build()?;

    // Execute the whole schedule (plus 30 settle rounds for late pulls)
    // and collect per-update outcomes.
    let mut sim = scenario.simulation(config);
    let report = sim.run_workload(scenario.workload(), 30);

    println!("\nworkload outcome:");
    println!("  rounds executed       : {}", report.rounds);
    println!("  messages              : {}", report.messages);
    println!(
        "  msgs/initially-online : {:.2}",
        report.messages_per_initial_online()
    );
    println!(
        "  converged updates     : {:.1}% ({} of {})",
        report.converged_fraction() * 100.0,
        report
            .updates
            .iter()
            .filter(|u| u.converged_round.is_some())
            .count(),
        report.updates.len()
    );
    if let Some(latency) = report.mean_rounds_to_converge() {
        println!("  mean rounds to conv.  : {latency:.1}");
    }
    println!(
        "  mean final awareness  : {:.3}",
        report.mean_final_awareness()
    );

    // How fresh is the board? The workload payload for event #n is "u{n}",
    // so the majority answer per topic should be its latest story.
    println!("\nfinal state:");
    for topic in TOPICS {
        let key = rumor::types::DataKey::from_name(topic);
        let latest = workload.iter().rev().find(|e| e.key == key);
        let answer = sim.query(key, 7, QueryPolicy::Majority);
        match (latest, answer) {
            (Some(want), Some(got)) => {
                let fresh = got
                    .value
                    .as_ref()
                    .is_some_and(|v| v.as_bytes() == want.payload().as_bytes());
                println!(
                    "  {topic:<14} majority answer {} story #{}",
                    if fresh {
                        "IS the newest"
                    } else {
                        "is NOT the newest"
                    },
                    want.sequence
                );
            }
            (Some(_), None) => println!("  {topic:<14} no replica answered"),
            (None, _) => println!("  {topic:<14} nothing was published"),
        }
    }

    let sim_report = sim.report();
    println!("\ntraffic: {}", sim_report.engine);
    println!("peer counters: {}", sim_report.peers);
    Ok(())
}
