//! Shared-calendar scenario (§2): multiple writers update and delete
//! entries concurrently; conflicting writes coexist as versions (§3) and
//! deletions propagate as tombstones with death certificates.
//!
//! Run with: `cargo run --example shared_calendar`

use rumor::churn::MarkovChurn;
use rumor::core::{ProtocolConfig, PullStrategy, Value};
use rumor::sim::Scenario;
use rumor::types::{DataKey, PeerId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let population = 400;
    let scenario = Scenario::builder(population, 11)
        .online_fraction(0.5)
        .churn(MarkovChurn::new(0.99, 0.02)?)
        .build()?;
    let config = ProtocolConfig::builder(population)
        .fanout_fraction(0.04)
        .pull_strategy(PullStrategy::Eager)
        .pull_fanout(3)
        .build()?;
    let mut sim = scenario.simulation(config);

    let slot = DataKey::from_name("calendar/2026-06-12T10:00");

    // Alice books the slot; the booking propagates.
    let alice = PeerId::new(0);
    sim.initiate_update(Some(alice), slot, Some(Value::from("alice: standup")));
    sim.run_rounds(12);

    // Bob and Carol — on different replicas — both reschedule the slot in
    // the same round, unaware of each other: a genuine concurrent write.
    let bob = sim
        .online()
        .iter_online()
        .find(|p| p.index() > 10)
        .expect("someone online");
    let carol = sim
        .online()
        .iter_online()
        .find(|p| p.index() > 10 && *p != bob)
        .expect("someone else online");
    sim.initiate_update(Some(bob), slot, Some(Value::from("bob: 1:1 with dana")));
    sim.initiate_update(Some(carol), slot, Some(Value::from("carol: design review")));
    sim.run_rounds(20);

    // §3: conflicts are not resolved — both versions coexist.
    let versions = sim.peer(alice).store().versions(slot);
    println!(
        "versions visible at {alice} after concurrent writes: {}",
        versions.len()
    );
    for v in versions {
        println!(
            "  - {:?} (lineage depth {})",
            v.value()
                .map(|x| String::from_utf8_lossy(x.as_bytes()).into_owned()),
            v.lineage().len()
        );
    }
    assert!(
        versions.len() >= 2,
        "concurrent bookings must coexist as distinct versions"
    );

    // Bob deletes his booking: a tombstone supersedes his branch only.
    let bob_version = sim
        .peer(bob)
        .store()
        .versions(slot)
        .iter()
        .find(|v| v.value().is_some_and(|x| x.as_bytes().starts_with(b"bob")))
        .map(|v| v.lineage().clone())
        .expect("bob sees his own booking");
    drop(bob_version);
    sim.initiate_update(Some(bob), slot, None); // tombstone over bob's latest
    sim.run_rounds(20);

    let after = sim.peer(alice).store().versions(slot);
    let tombstones = after.iter().filter(|v| v.is_tombstone()).count();
    let live: Vec<String> = after
        .iter()
        .filter_map(|v| v.value())
        .map(|x| String::from_utf8_lossy(x.as_bytes()).into_owned())
        .collect();
    println!(
        "\nafter bob's delete, {alice} sees {tombstones} tombstone(s) and live versions: {live:?}"
    );
    assert!(tombstones >= 1, "the death certificate must propagate");

    // Eventual consistency check across the online population.
    let digest = sim.peer(alice).store().digest();
    let agreeing = sim
        .online()
        .iter_online()
        .filter(|p| sim.peer(*p).store().digest() == digest)
        .count();
    println!(
        "replicas agreeing with {alice}: {agreeing}/{} online",
        sim.online().online_count()
    );
    Ok(())
}
