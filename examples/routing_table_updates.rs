//! P-Grid integration (§3): "the 'data' may indeed be knowledge regarding
//! the system's topology, for example the routing tables used in P-Grid."
//!
//! Builds a P-Grid trie, extracts the replica partition responsible for a
//! key as a `HostedPartition`, mounts the update protocol into a
//! partition-sized `Scenario` — the same driver every other protocol
//! runs on — to disseminate a routing-table change, and applies the
//! change to every replica's routing table.
//!
//! Run with: `cargo run --example routing_table_updates`

use rand::SeedableRng;
use rumor::core::Value;
use rumor::pgrid::{key_to_path, HostedPartition, PGrid, RoutingChange};
use rumor::sim::{Protocol, UpdateEvent};
use rumor::types::{DataKey, PeerId, Round};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);

    // 1. Self-organise a 256-peer P-Grid of depth 4.
    let mut grid = PGrid::build(256, 4, 60, &mut rng);
    println!(
        "built P-Grid: {} peers, {} leaf partitions",
        grid.len(),
        grid.partition_sizes().len()
    );

    // 2. Route a query to find the partition that owns the key.
    let key = DataKey::from_name("routing/refresh");
    let outcome = grid
        .route(PeerId::new(0), key)
        .expect("prefix routing succeeds");
    println!(
        "routed {key} from peer-0 in {} hops to {}",
        outcome.hops, outcome.responsible
    );
    let host = HostedPartition::new(&grid, key);
    println!(
        "replica partition for {} has {} members",
        key_to_path(key, 4),
        host.len()
    );

    // 3. Gossip a routing change within the partition: the hosted peers
    //    run over partition-local ids (dense 0..n) inside a Scenario,
    //    mapped back to overlay ids afterwards.
    let scenario = host.scenario(31).build()?;
    let protocol = host.gossip_protocol()?;
    let mut driver = scenario.drive(&protocol);

    // The change: partition members learn two fresh level-0 references.
    let change = RoutingChange::new(0, vec![PeerId::new(7), PeerId::new(42)]);
    let payload = Value::from(change.to_bytes());
    let update = driver.apply(PeerId::new(0), |peer, rng, out| {
        peer.initiate_update(key, Some(payload), Round::ZERO, rng, out)
    });
    // A fixed horizon, not quiescence: the hybrid protocol's periodic
    // staleness pull keeps polling by design.
    driver.run_rounds(30);
    let aware = driver
        .nodes()
        .iter()
        .filter(|r| protocol.is_aware(r, update.id()))
        .count();
    println!(
        "gossiped routing change in 30 rounds; {aware}/{} replicas received it",
        host.len()
    );

    // Mounting a pure dissemination baseline into the *same* partition
    // scenario is one line — e.g. how far would Gnutella flooding get?
    let flood = rumor::baselines::GnutellaFlooding { fanout: 3, ttl: 6 };
    let mut flood_driver = scenario.drive(&flood);
    let event = UpdateEvent {
        round: 0,
        key,
        delete: false,
        sequence: 0,
    };
    let rumor_id = flood_driver
        .initiate(&flood, Some(PeerId::new(0)), &event)
        .expect("seeded");
    let flood_report = flood_driver.track_update(&flood, rumor_id, 30);
    println!(
        "(for comparison, Gnutella flooding reaches {:.0}% of the partition in {} rounds)",
        flood_report.aware_online_fraction * 100.0,
        flood_report.rounds
    );

    // 4. Apply the gossiped change to the real routing tables.
    let mut applied = 0;
    for local in 0..host.len() {
        let overlay_id = host.overlay_id(PeerId::new(local as u32)).expect("member");
        if let Some(stored) = driver.node(PeerId::new(local as u32)).store().get(key) {
            let decoded = RoutingChange::from_bytes(stored.as_bytes())?;
            applied += usize::from(decoded.apply_to(grid.peer_mut(overlay_id)) > 0);
        }
    }
    println!("applied the change to {applied} routing tables");
    assert!(
        applied as f64 >= host.len() as f64 * 0.9,
        "routing update must reach the partition"
    );
    Ok(())
}
