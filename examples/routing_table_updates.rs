//! P-Grid integration (§3): "the 'data' may indeed be knowledge regarding
//! the system's topology, for example the routing tables used in P-Grid."
//!
//! Builds a P-Grid trie, extracts the replica partition responsible for a
//! key, runs the gossip protocol *within that partition* to disseminate a
//! routing-table change, and applies the change to every replica's
//! routing table.
//!
//! Run with: `cargo run --example routing_table_updates`

use rand::SeedableRng;
use rumor::core::{ProtocolConfig, ReplicaPeer, Value};
use rumor::net::{PerfectLinks, SyncEngine};
use rumor::churn::OnlineSet;
use rumor::pgrid::{key_to_path, PGrid, RoutingChange};
use rumor::types::{DataKey, PeerId, Round};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);

    // 1. Self-organise a 256-peer P-Grid of depth 4.
    let mut grid = PGrid::build(256, 4, 60, &mut rng);
    println!("built P-Grid: {} peers, {} leaf partitions", grid.len(), grid.partition_sizes().len());

    // 2. Route a query to find the partition that owns the key.
    let key = DataKey::from_name("routing/refresh");
    let outcome = grid.route(PeerId::new(0), key).expect("prefix routing succeeds");
    println!(
        "routed {key} from peer-0 in {} hops to {}",
        outcome.hops, outcome.responsible
    );
    let partition = grid.replica_partition(key);
    println!("replica partition for {} has {} members", key_to_path(key, 4), partition.len());

    // 3. Gossip a routing change within the partition. The gossip layer
    //    runs over *partition-local* ids (dense 0..n), mapped back to
    //    overlay ids afterwards.
    let n = partition.len();
    let config = ProtocolConfig::builder(n).fanout_absolute(4).build()?;
    let mut replicas: Vec<ReplicaPeer> = (0..n)
        .map(|i| {
            let mut p = ReplicaPeer::new(PeerId::new(i as u32), config.clone());
            p.learn_replicas((0..n as u32).map(PeerId::new));
            p
        })
        .collect();

    // The change: partition members learn two fresh level-0 references.
    let change = RoutingChange::new(0, vec![PeerId::new(7), PeerId::new(42)]);
    let payload = Value::from(change.to_bytes());

    let online = OnlineSet::all_online(n);
    let mut engine: SyncEngine<rumor::core::Message> = SyncEngine::new(n);
    let (update, effects) =
        replicas[0].initiate_update(key, Some(payload), Round::ZERO, &mut rng);
    engine.inject(PeerId::new(0), effects);
    let rounds = engine.run_to_quiescence(&mut replicas, &online, &PerfectLinks, &mut rng, 30);
    let aware = replicas.iter().filter(|r| r.has_processed(update.id())).count();
    println!("gossiped routing change in {rounds} rounds; {aware}/{n} replicas received it");

    // 4. Apply the gossiped change to the real routing tables.
    let mut applied = 0;
    for (local, &overlay_id) in partition.iter().enumerate() {
        if let Some(stored) = replicas[local].store().get(key) {
            let decoded = RoutingChange::from_bytes(stored.as_bytes())?;
            applied += usize::from(decoded.apply_to(grid.peer_mut(overlay_id)) > 0);
        }
    }
    println!("applied the change to {applied} routing tables");
    assert!(applied as f64 >= n as f64 * 0.9, "routing update must reach the partition");
    Ok(())
}
