//! Head-to-head: the paper's push phase against Gnutella flooding, Haas
//! GOSSIP1 and Demers rumor mongering on the same population — the
//! executable version of Table 2's comparison.
//!
//! Run with: `cargo run --example compare_baselines`

use rumor::baselines::{
    BaselineSim, GnutellaNode, HaasNode, MongerConfig, MongerStop, RumorMongerNode,
};
use rumor::core::{ForwardPolicy, ProtocolConfig, PullStrategy};
use rumor::metrics::{Align, Table};
use rumor::sim::SimulationBuilder;
use rumor::types::{DataKey, UpdateId};

const POPULATION: usize = 1_000;
const FANOUT: usize = 5;
const SEED: u64 = 77;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rumor_id = UpdateId::from_bits(1);
    let mut table = Table::new(vec![
        "protocol".into(),
        "messages".into(),
        "msgs/peer".into(),
        "coverage".into(),
        "rounds".into(),
    ]);
    for i in 1..5 {
        table.align(i, Align::Right);
    }

    // Ours: push phase with partial lists and decaying PF.
    {
        let config = ProtocolConfig::builder(POPULATION)
            .fanout_absolute(FANOUT)
            .forward(ForwardPolicy::ExponentialDecay { base: 0.9 })
            .pull_strategy(PullStrategy::OnDemand)
            .build()?;
        let mut sim = SimulationBuilder::new(POPULATION, SEED).protocol(config).build()?;
        let report = sim.propagate(DataKey::from_name("versus"), "v", 60);
        table.row(vec![
            "push phase (ours)".into(),
            report.push_messages.to_string(),
            format!("{:.2}", report.messages_per_initial_online()),
            format!("{:.3}", report.aware_online_fraction),
            report.rounds.to_string(),
        ]);
    }

    // Gnutella flooding with duplicate avoidance.
    {
        let nodes: Vec<GnutellaNode> = (0..POPULATION as u32)
            .map(|i| GnutellaNode::fully_connected(i, POPULATION, FANOUT, 10))
            .collect();
        let mut sim = BaselineSim::new(nodes, POPULATION, SEED);
        sim.seed(0, |n, rng| n.seed_rumor(rumor_id, rng));
        let rounds = sim.run_until_quiescent(60);
        table.row(vec![
            "Gnutella flooding".into(),
            sim.messages().to_string(),
            format!("{:.2}", sim.messages_per_initial_online()),
            format!("{:.3}", sim.aware_fraction(|n| n.knows(rumor_id))),
            rounds.to_string(),
        ]);
    }

    // Haas GOSSIP1(0.8, 2).
    {
        let nodes: Vec<HaasNode> = (0..POPULATION as u32)
            .map(|i| HaasNode::fully_connected(i, POPULATION, FANOUT, 10, 0.8, 2))
            .collect();
        let mut sim = BaselineSim::new(nodes, POPULATION, SEED);
        sim.seed(0, |n, rng| n.seed_rumor(rumor_id, rng));
        let rounds = sim.run_until_quiescent(60);
        table.row(vec![
            "Haas G(0.8,2)".into(),
            sim.messages().to_string(),
            format!("{:.2}", sim.messages_per_initial_online()),
            format!("{:.3}", sim.aware_fraction(|n| n.knows(rumor_id))),
            rounds.to_string(),
        ]);
    }

    // Demers feedback/coin rumor mongering.
    {
        let config = MongerConfig {
            feedback: true,
            stop: MongerStop::Coin { k: 4 },
        };
        let nodes: Vec<RumorMongerNode> = (0..POPULATION as u32)
            .map(|i| RumorMongerNode::fully_connected(i, POPULATION, config))
            .collect();
        let mut sim = BaselineSim::new(nodes, POPULATION, SEED);
        sim.seed(0, |n, _| n.seed_rumor(rumor_id));
        sim.run_rounds(120);
        table.row(vec![
            "Demers monger (fb/coin k=4)".into(),
            sim.messages().to_string(),
            format!("{:.2}", sim.messages_per_initial_online()),
            format!("{:.3}", sim.aware_fraction(|n| n.knows(rumor_id))),
            "120".into(),
        ]);
    }

    println!("{table}");
    println!("note: baseline message counts include feedback/ack traffic where the protocol uses it.");
    Ok(())
}
