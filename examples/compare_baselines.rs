//! Head-to-head: the paper's push phase against Gnutella flooding, Haas
//! GOSSIP1, Demers anti-entropy and rumor mongering — every contender
//! mounted into **one shared `Scenario`**, so all of them see the same
//! topology draw, churn trajectory and initial availability. This is the
//! executable version of Table 2's comparison.
//!
//! The payoff of the declarative API: the environment is declared once,
//! so re-running the whole contest under different conditions is one
//! builder change. This example runs it twice — the benign all-online
//! regime, then the paper's harsh one (20% online, churn, partial
//! knowledge) that the old baseline driver could not even express.
//!
//! Run with: `cargo run --example compare_baselines`

use rumor::churn::MarkovChurn;
use rumor::core::{ForwardPolicy, ProtocolConfig, PullStrategy};
use rumor::metrics::{Align, Table};
use rumor::sim::{ConvergenceSpec, Scenario, TopologySpec};
use rumor_bench::head_to_head::{head_to_head, ContenderRow, ContenderSet};

const POPULATION: usize = 1_000;
const SEED: u64 = 77;

fn render(title: &str, rows: &[ContenderRow]) {
    let mut table = Table::new(vec![
        "protocol".into(),
        "messages".into(),
        "msgs/peer".into(),
        "coverage".into(),
        "rounds".into(),
    ]);
    for i in 1..5 {
        table.align(i, Align::Right);
    }
    for r in rows {
        table.row(vec![
            r.protocol.clone(),
            r.total_messages.to_string(),
            format!("{:.2}", r.messages_per_initial_online),
            format!("{:.3}", r.coverage),
            r.rounds.to_string(),
        ]);
    }
    println!("== {title} ==\n{table}");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ours: push phase with partial lists and decaying PF, fanout matched
    // to the flooding baselines; eager pull for the churned regime.
    let config = |fanout, pull| {
        ProtocolConfig::builder(POPULATION)
            .fanout_absolute(fanout)
            .forward(ForwardPolicy::ExponentialDecay { base: 0.9 })
            .pull_strategy(pull)
            .build()
    };

    // Round 1: the benign regime — everyone online, full knowledge.
    let contenders = ContenderSet::default();
    let benign = Scenario::builder(POPULATION, SEED).build()?;
    render(
        "all online, full knowledge",
        &head_to_head(
            &benign,
            config(contenders.fanout, PullStrategy::OnDemand)?,
            contenders,
            60,
        ),
    );

    // Round 2: the paper's environment — 20% online, churn, each peer
    // knowing only 5% of the replica set. Same contest, one builder
    // change; before the redesign the baselines silently ran the benign
    // regime regardless. Every contender's fanout widens to 25 addresses
    // (≈ 5 expected *online* targets, the paper's §4.2 sizing), and the
    // stall patience is raised so slow-burning epidemics are measured
    // rather than cut off.
    let contenders = ContenderSet {
        fanout: 25,
        ..ContenderSet::default()
    };
    let harsh = Scenario::builder(POPULATION, SEED)
        .online_fraction(0.2)
        .churn(MarkovChurn::new(0.98, 0.01)?)
        .topology(TopologySpec::RandomSubset { k: 50 })
        .convergence(ConvergenceSpec {
            patience: 10,
            ..ConvergenceSpec::default()
        })
        .build()?;
    render(
        "20% online, churn sigma=0.98, 5% knowledge",
        &head_to_head(
            &harsh,
            config(contenders.fanout, PullStrategy::Eager)?,
            contenders,
            60,
        ),
    );

    println!(
        "note: message counts include feedback/ack/digest traffic where the protocol uses it."
    );
    Ok(())
}
