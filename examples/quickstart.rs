//! Quickstart: propagate one update through an unreliable replica
//! partition and watch the push phase, then let a returning peer pull
//! what it missed.
//!
//! Run with: `cargo run --example quickstart`

use rumor::churn::MarkovChurn;
use rumor::core::{ForwardPolicy, ProtocolConfig, PullStrategy, QueryPolicy};
use rumor::sim::Scenario;
use rumor::types::{DataKey, PeerId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's environment: 1000 replicas, 20% online, peers drop off
    // with probability 1 - sigma per round and return at a low rate. The
    // `Scenario` describes only the environment — any protocol (ours or a
    // baseline) can be mounted into it.
    let population = 1_000;
    let scenario = Scenario::builder(population, 2026)
        .online_fraction(0.2)
        .churn(MarkovChurn::new(0.98, 0.01)?)
        .build()?;

    let config = ProtocolConfig::builder(population)
        .fanout_fraction(0.03) // f_r: each pusher addresses 30 replicas
        .forward(ForwardPolicy::ExponentialDecay { base: 0.9 }) // PF(t) = 0.9^t
        .pull_strategy(PullStrategy::Eager) // online_again => pull
        .pull_fanout(3)
        .build()?;
    let mut sim = scenario.simulation(config);

    // One peer publishes a new value; the push phase floods it to the
    // online population with the partial-list optimisation.
    let key = DataKey::from_name("message-of-the-day");
    let report = sim.propagate(key, "rumors spread fast", 60);

    println!("push phase:");
    println!("  rounds                : {}", report.rounds);
    println!(
        "  online awareness      : {:.1}%",
        report.aware_online_fraction * 100.0
    );
    println!(
        "  total awareness       : {:.1}%",
        report.aware_total_fraction * 100.0
    );
    println!("  push messages         : {}", report.push_messages);
    println!(
        "  per initially-online  : {:.2}",
        report.messages_per_initial_online()
    );
    println!("  duplicates received   : {}", report.duplicates);

    // A peer that slept through the whole push comes online: the eager
    // pull strategy reconciles it within a couple of rounds.
    let sleeper = (0..population as u32)
        .map(PeerId::new)
        .find(|&p| !sim.online().is_online(p) && sim.peer(p).store().get(key).is_none())
        .expect("someone slept through the push");
    sim.set_online(sleeper, true);
    sim.run_rounds(4);

    let value = sim.peer(sleeper).store().get(key);
    println!("\npull phase:");
    println!(
        "  {sleeper} came online and now reads: {:?}",
        value.map(|v| String::from_utf8_lossy(v.as_bytes()).into_owned())
    );
    assert!(value.is_some(), "the pull phase must recover the update");

    // A client queries a handful of replicas and resolves by version.
    let answer = sim
        .query(key, 5, QueryPolicy::Latest)
        .expect("replicas hold the key");
    println!(
        "  query over 5 replicas  : {:?} (confident: {})",
        String::from_utf8_lossy(answer.value.as_ref().expect("not a tombstone").as_bytes()),
        answer.confident
    );
    Ok(())
}
