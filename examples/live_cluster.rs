//! Live cluster: the paper protocol on the threaded `rumor-cluster`
//! runtime — one OS thread per replica, every message an encoded
//! `rumor-wire` frame — under churn, loss and real thread crashes.
//!
//! Run with: `cargo run --release --example live_cluster`

use rumor::churn::MarkovChurn;
use rumor::cluster::{ClusterBuilder, FaultSpec};
use rumor::core::{ProtocolConfig, PullStrategy};
use rumor::sim::{PaperProtocol, Scenario, UpdateEvent};
use rumor::types::DataKey;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The environment is a plain Scenario — the same declarative object
    // the simulation harness uses, so the live run is directly
    // comparable to a Driver run of the identical scenario.
    let population = 128;
    let scenario = Scenario::builder(population, 2026)
        .online_fraction(0.7)
        .churn(MarkovChurn::new(0.97, 0.2)?)
        .loss(0.03)
        .build()?;

    let config = ProtocolConfig::builder(population)
        .fanout_absolute(4)
        .pull_strategy(PullStrategy::Eager) // online_again => pull
        .pull_retry(2, 3)
        .staleness_rounds(6) // periodic anti-entropy repairs push misses
        .build()?;

    // Mount the paper peer onto OS threads: in-process channels carry
    // length-prefixed binary frames, and the fault injector kills (and
    // later respawns) node threads while the update propagates.
    let mut cluster = ClusterBuilder::new(&scenario)
        .faults(FaultSpec {
            crash_rate: 0.05,
            restart_after: 4,
            ..FaultSpec::default()
        })?
        .threaded(PaperProtocol::new(config));

    let event = UpdateEvent {
        round: 0,
        key: DataKey::from_name("message-of-the-day"),
        delete: false,
        sequence: 0,
    };
    let update = cluster.initiate(&event).expect("someone is online");
    let converged = cluster.run_until_all_online_aware(update, 200);
    let report = cluster.finish(update);

    println!("live cluster ({population} node threads):");
    match converged {
        Some(round) => println!("  converged at round    : {round}"),
        None => println!("  converged             : not within the horizon"),
    }
    println!("  rounds executed       : {}", report.rounds);
    println!(
        "  online awareness      : {}/{} replicas",
        report.aware_online, report.online
    );
    println!("  frames on the wire    : {}", report.frames_sent);
    println!(
        "  bytes on the wire     : {} ({:.1} B/frame)",
        report.bytes_sent,
        report.mean_frame_bytes()
    );
    println!(
        "  delivered / off / lost: {} / {} / {}",
        report.frames_delivered, report.lost_offline, report.lost_fault
    );
    println!(
        "  thread crashes        : {} ({} restarts)",
        report.crashes, report.restarts
    );
    assert_eq!(report.decode_errors, 0, "strict codec, clean traffic");
    Ok(())
}
