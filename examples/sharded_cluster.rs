//! Sharded live cluster: the paper protocol at a population no
//! thread-per-node runtime can host comfortably — 2048 replicas
//! multiplexed over a fixed pool of worker threads, every message an
//! encoded `rumor-wire` frame, under churn, loss and crash faults.
//!
//! Run with: `cargo run --release --example sharded_cluster`

use rumor::churn::MarkovChurn;
use rumor::cluster::{ClusterBuilder, FaultSpec};
use rumor::core::{ProtocolConfig, PullStrategy};
use rumor::sim::{PaperProtocol, Scenario, TopologySpec, UpdateEvent};
use rumor::types::DataKey;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Same declarative Scenario as every other execution path; at this
    // population each replica knows a sparse random subset (§2's
    // partial-knowledge regime), not the full mesh.
    let population = 2048;
    let scenario = Scenario::builder(population, 2026)
        .online_fraction(0.7)
        .topology(TopologySpec::RandomSubset { k: 32 })
        .churn(MarkovChurn::new(0.97, 0.2)?)
        .loss(0.03)
        .build()?;

    let config = ProtocolConfig::builder(population)
        .fanout_absolute(4)
        .pull_strategy(PullStrategy::Eager)
        .pull_retry(2, 3)
        .staleness_rounds(6)
        .build()?;

    // Mount the paper peer on the sharded executor: worker count
    // defaults to the machine's available parallelism (override with
    // `.workers(n)`), each worker owning a contiguous shard of cells.
    // A crash parks the victim cell inside its shard — frames pile up
    // in its inbox until the seeded restart, exactly like the
    // thread-per-node mode's thread kill.
    let mut cluster = ClusterBuilder::new(&scenario)
        .faults(FaultSpec {
            crash_rate: 0.05,
            restart_after: 4,
            ..FaultSpec::default()
        })?
        .sharded(PaperProtocol::new(config));

    let event = UpdateEvent {
        round: 0,
        key: DataKey::from_name("message-of-the-day"),
        delete: false,
        sequence: 0,
    };
    let update = cluster.initiate(&event).expect("someone is online");
    let workers = cluster.workers();
    let converged = cluster.run_until_all_online_aware(update, 200);
    let report = cluster.finish(update);

    println!("sharded cluster ({population} replicas on {workers} workers):");
    match converged {
        Some(round) => println!("  converged at round    : {round}"),
        None => println!("  converged             : not within the horizon"),
    }
    println!("  rounds executed       : {}", report.rounds);
    println!(
        "  online awareness      : {}/{} replicas",
        report.aware_online, report.online
    );
    println!("  frames on the wire    : {}", report.frames_sent);
    println!(
        "  bytes on the wire     : {} ({:.1} B/frame)",
        report.bytes_sent,
        report.mean_frame_bytes()
    );
    println!(
        "  delivered / off / lost: {} / {} / {}",
        report.frames_delivered, report.lost_offline, report.lost_fault
    );
    println!(
        "  cell crashes          : {} ({} restarts)",
        report.crashes, report.restarts
    );
    assert_eq!(report.decode_errors, 0, "strict codec, clean traffic");
    Ok(())
}
