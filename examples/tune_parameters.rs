//! Parameter-tuning walkthrough: sweep `f_r` and `PF(t)` with the
//! analytical model to pick a configuration, then confirm the choice with
//! the simulator — the workflow §6 envisions for deployments.
//!
//! Run with: `cargo run --example tune_parameters`

use rumor::analysis::{PfSchedule, PushModel, PushParams};
use rumor::churn::MarkovChurn;
use rumor::core::{ForwardPolicy, ProtocolConfig, PullStrategy};
use rumor::metrics::{Align, Table};
use rumor::sim::Scenario;
use rumor::types::DataKey;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Environment: 5000 replicas, 20% online, sigma = 0.95.
    let (r, online, sigma) = (5_000.0, 1_000.0, 0.95);

    println!("sweeping the analytical model…\n");
    let mut table = Table::new(vec![
        "f_r".into(),
        "PF".into(),
        "msgs/peer".into(),
        "rounds".into(),
        "awareness".into(),
    ]);
    for i in 2..5 {
        table.align(i, Align::Right);
    }
    let mut best: Option<(f64, PfSchedule, f64)> = None;
    for f_r in [0.005, 0.01, 0.02] {
        for (label, pf) in [
            ("1", PfSchedule::One),
            ("0.9^t", PfSchedule::Exponential { base: 0.9 }),
            (
                "0.8*0.7^t+0.2",
                PfSchedule::OffsetExponential {
                    scale: 0.8,
                    base: 0.7,
                    offset: 0.2,
                },
            ),
        ] {
            let out = PushModel::new(PushParams::new(r, online, sigma, f_r).with_pf(pf)).run();
            table.row(vec![
                format!("{f_r}"),
                label.into(),
                format!("{:.2}", out.messages_per_initial_online()),
                out.rounds.to_string(),
                format!("{:.4}", out.final_awareness),
            ]);
            // Pick the cheapest configuration that still reaches 95%.
            if out.final_awareness > 0.95 {
                let cost = out.messages_per_initial_online();
                if best.is_none_or(|(_, _, c)| cost < c) {
                    best = Some((f_r, pf, cost));
                }
            }
        }
    }
    println!("{table}");

    let (f_r, pf, cost) = best.expect("some configuration reaches 95%");
    println!("model's pick: f_r = {f_r}, PF = {pf:?} at {cost:.2} msgs/peer\n");

    // Confirm with the simulator (real protocol incl. partial lists).
    let forward = match pf {
        PfSchedule::One => ForwardPolicy::Always,
        PfSchedule::Exponential { base } => ForwardPolicy::ExponentialDecay { base },
        PfSchedule::OffsetExponential {
            scale,
            base,
            offset,
        } => ForwardPolicy::OffsetExponential {
            scale,
            base,
            offset,
        },
        _ => ForwardPolicy::Always,
    };
    let scenario = Scenario::builder(5_000, 3)
        .online_count(1_000)
        .churn(MarkovChurn::new(sigma, 0.0)?)
        .build()?;
    let config = ProtocolConfig::builder(5_000)
        .fanout_fraction(f_r)
        .forward(forward)
        .pull_strategy(PullStrategy::OnDemand)
        .build()?;
    let mut sim = scenario.simulation(config);
    let report = sim.propagate(DataKey::from_name("tuned"), "v", 80);
    println!(
        "simulator confirms: {:.2} msgs/peer, awareness {:.4}, {} rounds",
        report.messages_per_initial_online(),
        report.aware_online_fraction,
        report.rounds
    );
    Ok(())
}
