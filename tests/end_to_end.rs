//! End-to-end integration: push + pull reach quasi-consistency in the
//! paper's unreliable environment, including under injected failures.

use rumor::churn::{Catastrophe, MarkovChurn, StaticChurn};
use rumor::core::{ForwardPolicy, ProtocolConfig, PullStrategy, QueryPolicy, Value};
use rumor::net::Partition;
use rumor::sim::{consistency_fraction, SimulationBuilder, TopologySpec};
use rumor::types::{DataKey, PeerId, Round};

fn key() -> DataKey {
    DataKey::from_name("integration")
}

#[test]
fn push_then_pull_reaches_whole_population() {
    // 20% online during the push; afterwards everyone returns and pulls.
    let population = 600;
    let config = ProtocolConfig::builder(population)
        .fanout_fraction(0.05)
        .pull_strategy(PullStrategy::Eager)
        .pull_fanout(4)
        .pull_retry(2, 6)
        .build()
        .unwrap();
    let mut sim = SimulationBuilder::new(population, 1)
        .online_fraction(0.2)
        .churn(MarkovChurn::new(0.995, 0.05).unwrap())
        .protocol(config)
        .build()
        .unwrap();
    let update = sim.initiate_update(None, key(), Some(Value::from("v1")));
    sim.run_rounds(120);

    let aware_total = rumor::sim::awareness(sim.peers(), None, update.id());
    assert!(
        aware_total > 0.95,
        "push+pull must reach (nearly) everyone, got {aware_total}"
    );
}

#[test]
fn catastrophe_mid_push_is_repaired_by_pull() {
    let population = 500;
    let config = ProtocolConfig::builder(population)
        .fanout_fraction(0.05)
        .pull_strategy(PullStrategy::Eager)
        .pull_retry(2, 8)
        .build()
        .unwrap();
    // Everyone online; after round 2 (mid-push), 70% of peers vanish;
    // they trickle back via p_on.
    let churn = Catastrophe::new(MarkovChurn::new(1.0, 0.1).unwrap()).with_event(2, 0.7);
    let mut sim = SimulationBuilder::new(population, 2)
        .churn(churn)
        .protocol(config)
        .build()
        .unwrap();
    let update = sim.initiate_update(None, key(), Some(Value::from("survives")));
    sim.run_rounds(80);

    let aware_total = rumor::sim::awareness(sim.peers(), None, update.id());
    assert!(
        aware_total > 0.9,
        "pull repairs a catastrophic interruption, got {aware_total}"
    );
}

#[test]
fn network_partition_heals_through_pull() {
    let population = 400;
    let config = ProtocolConfig::builder(population)
        .fanout_fraction(0.05)
        .pull_strategy(PullStrategy::Eager)
        .staleness_rounds(10) // periodic anti-entropy heals the halves
        .pull_retry(2, 4)
        .build()
        .unwrap();
    // The two halves cannot talk for rounds [0, 15).
    let mut sim = SimulationBuilder::new(population, 3)
        .protocol(config)
        .partition(Partition::halves(population, Round::ZERO, Round::new(15)))
        .build()
        .unwrap();
    // Initiate in the first half.
    let update = sim.initiate_update(Some(PeerId::new(0)), key(), Some(Value::from("split")));
    sim.run_rounds(14);
    let aware_during = rumor::sim::awareness(sim.peers(), None, update.id());
    assert!(
        aware_during < 0.8,
        "the partition must confine the rumor, got {aware_during}"
    );
    sim.run_rounds(60);
    let aware_after = rumor::sim::awareness(sim.peers(), None, update.id());
    assert!(
        aware_after > 0.95,
        "after healing, staleness pulls spread the update, got {aware_after}"
    );
}

#[test]
fn quasi_consistency_with_multiple_updates() {
    let population = 300;
    let config = ProtocolConfig::builder(population)
        .fanout_fraction(0.05)
        .pull_strategy(PullStrategy::Eager)
        .pull_retry(2, 4)
        .build()
        .unwrap();
    let mut sim = SimulationBuilder::new(population, 4)
        .online_fraction(0.6)
        .churn(MarkovChurn::new(0.99, 0.05).unwrap())
        .protocol(config)
        .build()
        .unwrap();
    // Five updates to distinct keys from random initiators.
    for i in 0..5 {
        let k = DataKey::from_name(&format!("multi/{i}"));
        sim.initiate_update(None, k, Some(Value::from(format!("value-{i}").as_str())));
        sim.run_rounds(6);
    }
    sim.run_rounds(80);
    let consistent = consistency_fraction(sim.peers(), Some(sim.online()));
    assert!(
        consistent > 0.9,
        "online stores converge to the majority digest, got {consistent}"
    );
    // Queries agree on every key.
    for i in 0..5 {
        let k = DataKey::from_name(&format!("multi/{i}"));
        let answer = sim.query(k, 5, QueryPolicy::Majority).expect("answered");
        assert_eq!(
            answer.value.unwrap().as_bytes(),
            format!("value-{i}").as_bytes()
        );
    }
}

#[test]
fn partial_knowledge_with_discovery_still_converges() {
    // Peers know only 5% of the replica set; flood lists leak addresses
    // (name-dropper) and the rumor still covers the population.
    let population = 500;
    let config = ProtocolConfig::builder(population)
        .fanout_fraction(0.04)
        .forward(ForwardPolicy::Always)
        .pull_strategy(PullStrategy::OnDemand)
        .build()
        .unwrap();
    let mut sim = SimulationBuilder::new(population, 5)
        .topology(TopologySpec::RandomSubset { k: 25 })
        .churn(StaticChurn::new())
        .protocol(config)
        .build()
        .unwrap();
    let before: usize = sim.peer(PeerId::new(42)).known_replicas().len();
    let report = sim.propagate(key(), "discover", 60);
    assert!(report.aware_online_fraction > 0.95, "{report:?}");
    let after: usize = sim.peer(PeerId::new(42)).known_replicas().len();
    assert!(
        after > before,
        "flood lists must teach peers new replica addresses ({before} -> {after})"
    );
}
