//! Tier-1 architecture gate: the rumor-lint pass must come back clean
//! over this very tree.
//!
//! This is the "invariants are executable" contract from the ROADMAP: a
//! change that re-grows a round loop outside `rumor-sim`, returns
//! `Vec<Effect>`, builds frame headers outside `rumor-wire`, reaches for
//! ambient time/entropy or hash-ordered state, reverses a crate-graph
//! edge, or drops `#![forbid(unsafe_code)]` fails `cargo test` — not
//! code review.

use std::path::Path;

use rumor_lint::report::Report;
use rumor_lint::rules::RULE_NAMES;

fn workspace_report() -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    rumor_lint::lint_workspace(root).expect("lint pass walks the workspace")
}

#[test]
fn workspace_is_lint_clean() {
    let report = workspace_report();
    assert!(
        report.is_clean(),
        "rumor-lint found unsuppressed violations:\n{}",
        report.render_table(&RULE_NAMES)
    );
}

#[test]
fn lint_actually_scanned_the_tree() {
    let report = workspace_report();
    // Guard against a silently empty walk: the workspace has 14 library
    // crates plus the facade, and well over a hundred sources.
    assert!(
        report.files_scanned > 100,
        "only {} files scanned",
        report.files_scanned
    );
    assert!(
        report.manifests_checked >= 15,
        "only {} manifests checked",
        report.manifests_checked
    );
}

#[test]
fn every_suppression_carries_a_reason() {
    let report = workspace_report();
    for s in &report.suppressed {
        assert!(
            !s.reason.trim().is_empty(),
            "{}:{} suppresses {} without a reason",
            s.file,
            s.line,
            s.rule
        );
        assert!(
            RULE_NAMES.contains(&s.rule.as_str()),
            "{}:{} suppresses unknown rule {:?}",
            s.file,
            s.line,
            s.rule
        );
    }
}

#[test]
fn live_report_round_trips_through_json() {
    let report = workspace_report();
    let parsed = Report::from_json(&report.to_json()).expect("schema-valid JSON");
    assert_eq!(parsed, report);
}
