//! Regression test for the flood-dies-before-staleness-pull interaction.
//!
//! The push flood usually blankets a partition but can stochastically
//! miss peers; the `no_updates_since` pull trigger is the safety net. A
//! driver that stops at `SyncEngine::is_quiescent` stops too early: the
//! engine is "quiescent" the moment the flood's last message lands, which
//! is *before* the first staleness pull fires (the hybrid protocol keeps
//! polling and never goes fully quiet). This test pins the repair path:
//! even a flood engineered to miss most peers must converge to full
//! awareness once staleness pulls are given a fixed horizon to run.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor::churn::OnlineSet;
use rumor::core::{ForwardPolicy, Message, ProtocolConfig, ReplicaPeer, Value};
use rumor::net::{EffectSink, PerfectLinks, SyncEngine};
use rumor::types::{DataKey, PeerId, Round};

fn population(n: usize, config: &ProtocolConfig) -> Vec<ReplicaPeer> {
    (0..n)
        .map(|i| {
            let mut p = ReplicaPeer::new(PeerId::new(i as u32), config.clone());
            p.learn_replicas((0..n as u32).map(PeerId::new));
            p
        })
        .collect()
}

#[test]
fn staleness_pull_repairs_peers_the_flood_missed() {
    // Fanout 1 and PF = 0 beyond the initiator: the "flood" is a single
    // message, so n - 2 peers are guaranteed to be missed by push.
    let n = 12;
    let config = ProtocolConfig::builder(n)
        .fanout_absolute(1)
        .forward(ForwardPolicy::Constant { p: 0.0 })
        .staleness_rounds(3)
        .build()
        .unwrap();
    let mut peers = population(n, &config);
    let online = OnlineSet::all_online(n);
    let mut engine: SyncEngine<Message> = SyncEngine::new(n);
    let mut rng = ChaCha8Rng::seed_from_u64(17);

    let key = DataKey::from_name("missed-by-flood");
    let mut effects = EffectSink::new();
    let update = peers[0].initiate_update(
        key,
        Some(Value::from("x")),
        Round::ZERO,
        &mut rng,
        &mut effects,
    );
    engine.inject(PeerId::new(0), effects.drain());

    // The flood is spent after two rounds; quiescence here would report
    // convergence falsely.
    engine.step(&mut peers, &online, &PerfectLinks, &mut rng);
    engine.step(&mut peers, &online, &PerfectLinks, &mut rng);
    let aware_after_flood = peers
        .iter()
        .filter(|p| p.has_processed(update.id()))
        .count();
    assert!(
        aware_after_flood <= 2,
        "push with fanout 1 / PF 0 reaches at most the initiator and one target"
    );
    assert!(
        engine.is_quiescent(),
        "engine reports quiescence before the first staleness pull — the \
         bug this test guards: drivers must use a fixed horizon, not \
         run_to_quiescence, when periodic pulls are configured"
    );

    // A fixed horizon lets the periodic pulls run; anti-entropy converges
    // the whole partition.
    for _ in 0..30 {
        engine.step(&mut peers, &online, &PerfectLinks, &mut rng);
    }
    let aware = peers
        .iter()
        .filter(|p| p.has_processed(update.id()))
        .count();
    assert_eq!(aware, n, "staleness pulls must repair every missed peer");
    for p in &peers {
        assert_eq!(
            p.store().get(key).expect("converged").as_bytes(),
            b"x",
            "peer {} holds the value",
            p.peer_id()
        );
    }
}
