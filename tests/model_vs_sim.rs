//! The analytical model and the discrete simulator must tell the same
//! story (the paper's §8 validation plan, executed).

use rumor_bench::simfig::{standard_suite, validate};

#[test]
fn standard_suite_agrees_within_tolerance() {
    for row in standard_suite(1234) {
        assert!(
            row.cost_error() < 0.30,
            "{}: model {:.2} vs sim {:.2} msgs/peer",
            row.setting,
            row.model_cost,
            row.sim_cost.mean()
        );
        assert!(
            (row.model_awareness - row.sim_awareness.mean()).abs() < 0.12,
            "{}: model {:.3} vs sim {:.3} awareness",
            row.setting,
            row.model_awareness,
            row.sim_awareness.mean()
        );
        assert_eq!(
            row.sim_cost.n() as u32,
            row.trials,
            "stats carry every replication"
        );
    }
}

#[test]
fn agreement_improves_with_full_availability() {
    // With σ = 1 and everyone online the model's simplifications vanish;
    // the residual gap is only the list-vs-expectation approximation.
    let row = validate(2_000, 2_000, 1.0, 0.005, None, 5, 99);
    assert!(row.cost_error() < 0.12, "{row:?}");
}

#[test]
fn model_predicts_simulated_pf_savings() {
    // The *relative* saving from PF(t) = 0.9^t should transfer from the
    // model to the simulator.
    let always = validate(1_500, 500, 1.0, 0.02, None, 3, 7);
    let decayed = validate(1_500, 500, 1.0, 0.02, Some(0.9), 3, 7);
    let model_ratio = decayed.model_cost / always.model_cost;
    let sim_ratio = decayed.sim_cost.mean() / always.sim_cost.mean();
    assert!(
        (model_ratio - sim_ratio).abs() < 0.2,
        "saving ratios diverge: model {model_ratio:.2} vs sim {sim_ratio:.2}"
    );
    assert!(model_ratio < 0.9, "the model must predict a saving");
}
