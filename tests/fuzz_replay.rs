//! Tier-1 chaos-fuzzer gate: the committed repro record replays bit for
//! bit, the fuzzer re-catches its planted violation from nothing but
//! the batch seed, and benign batches satisfy the convergence oracle.
//!
//! The committed fixture is a genuine violation the fuzzer found:
//! population 23 on sparse views (`subset_k = 3`) with ~48% of members
//! running the digest-lie behaviour — two honest stable witnesses end
//! the run never having heard of update 0, because every pull they
//! issued was answered by a liar claiming nothing was missing.

use rumor::fuzz::{run_batch, ExecutionRecord, FuzzConfig, ReplayVerdict};
use rumor::obs::{EventKind, MsgKind};

const FIXTURE: &str = include_str!("fixtures/fuzz_record_digest_lie.json");

/// The batch knobs that originally produced the fixture. `cases: 2`
/// suffices because the violating case is index 1.
fn planted_config() -> FuzzConfig {
    FuzzConfig {
        seed: 42,
        cases: 2,
        byzantine_max_fraction: 0.6,
        ..FuzzConfig::default()
    }
}

#[test]
fn committed_record_replays_bit_for_bit() {
    let record = ExecutionRecord::from_json(FIXTURE).expect("fixture parses");
    // Re-serializing the parsed record reproduces the committed bytes —
    // the text-preserving JSON layer guarantees nothing drifts.
    assert_eq!(record.to_json(), FIXTURE, "fixture serialization drifted");
    // Re-running the frozen case reproduces the recorded divergence
    // structurally: same update, same aware/unaware witness split.
    let (verdict, outcome) = record.replay().expect("fixture case runs");
    assert_eq!(
        verdict,
        ReplayVerdict::Reproduced,
        "the recorded divergence did not come back"
    );
    assert!(outcome.tampered > 0, "the Byzantine block never tampered");
    assert!(outcome.byzantine > 0, "no member was mounted Byzantine");
}

#[test]
fn fuzzer_catches_the_planted_violation_from_the_seed_alone() {
    let report = run_batch(&planted_config()).expect("valid config");
    assert_eq!(report.errors, Vec::<String>::new());
    assert_eq!(
        report.violations.len(),
        1,
        "exactly one of the two cases violates the oracle"
    );
    // The record the fuzzer produces today is byte-identical to the
    // committed fixture: generation, execution and serialization are
    // all functions of the seed.
    assert_eq!(
        report.violations[0].to_json(),
        FIXTURE,
        "the fuzzer no longer reproduces the committed record"
    );
}

#[test]
fn replayed_trace_pins_where_the_starved_witnesses_lose_honest_repair() {
    let record = ExecutionRecord::from_json(FIXTURE).expect("fixture parses");
    let (verdict, _, trace) = record
        .replay_traced("fuzz-replay-1")
        .expect("fixture case runs traced");
    assert_eq!(
        verdict,
        ReplayVerdict::Reproduced,
        "tracing must not perturb the replayed trajectory"
    );
    // The traced replay is itself deterministic: a second capture
    // produces the identical artefact byte for byte.
    let (_, _, again) = record
        .replay_traced("fuzz-replay-1")
        .expect("fixture case runs traced twice");
    assert_eq!(
        trace.to_json(),
        again.to_json(),
        "replayed trace artefact drifted between runs"
    );

    // Members that ever tampered with a send are the digest liars; every
    // other sender is an honest repair source.
    let liars: std::collections::BTreeSet<u32> = trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Tamper)
        .map(|e| e.node)
        .collect();
    assert!(!liars.is_empty(), "the fixture's Byzantine block must lie");

    // The recorded divergence starves witnesses 15 and 21 of update 0.
    // The trace pins the exact round each one last received a pull
    // response from an *honest* peer — every honest responder they ever
    // reached was itself starved (an aware honest responder would have
    // handed them the update), and past the pinned round their repair
    // traffic is answered exclusively by liars, so awareness can never
    // reach them again.
    let last_honest_repair = |witness: u32| -> Option<u32> {
        trace
            .events
            .iter()
            .filter(|e| e.node == witness)
            .filter_map(|e| match e.kind {
                EventKind::Deliver { from, kind }
                    if (kind == MsgKind::PullResponse || kind == MsgKind::DeltaResponse)
                        && !liars.contains(&from) =>
                {
                    Some(e.round)
                }
                _ => None,
            })
            .max()
    };
    assert_eq!(
        (last_honest_repair(15), last_honest_repair(21)),
        (Some(152), Some(166)),
        "golden: the round each starved witness last heard an honest pull response"
    );
}

#[test]
fn benign_batches_satisfy_the_convergence_oracle() {
    // N = 256 random benign cases across both execution paths; bounded
    // populations/horizon keep the debug-build runtime in check.
    let config = FuzzConfig {
        seed: 2026,
        cases: 256,
        max_population: 20,
        max_rounds: 100,
        ..FuzzConfig::default()
    };
    let report = run_batch(&config).expect("valid config");
    assert!(
        report.is_clean(),
        "benign batch found violations: {:?}",
        report
            .violations
            .iter()
            .map(|r| (r.spec.index, r.divergence.kind()))
            .collect::<Vec<_>>()
    );
    assert_eq!(report.cases_run, 256);
    assert!(report.engine_cases > 0 && report.cluster_cases > 0);
    assert_eq!(report.total_tampered, 0, "benign members must not tamper");
}
