//! Tier-1 chaos-fuzzer gate: the committed repro record replays bit for
//! bit, the fuzzer re-catches its planted violation from nothing but
//! the batch seed, and benign batches satisfy the convergence oracle.
//!
//! The committed fixture is a genuine violation the fuzzer found:
//! population 23 on sparse views (`subset_k = 3`) with ~48% of members
//! running the digest-lie behaviour — two honest stable witnesses end
//! the run never having heard of update 0, because every pull they
//! issued was answered by a liar claiming nothing was missing.

use rumor::fuzz::{run_batch, ExecutionRecord, FuzzConfig, ReplayVerdict};

const FIXTURE: &str = include_str!("fixtures/fuzz_record_digest_lie.json");

/// The batch knobs that originally produced the fixture. `cases: 2`
/// suffices because the violating case is index 1.
fn planted_config() -> FuzzConfig {
    FuzzConfig {
        seed: 42,
        cases: 2,
        byzantine_max_fraction: 0.6,
        ..FuzzConfig::default()
    }
}

#[test]
fn committed_record_replays_bit_for_bit() {
    let record = ExecutionRecord::from_json(FIXTURE).expect("fixture parses");
    // Re-serializing the parsed record reproduces the committed bytes —
    // the text-preserving JSON layer guarantees nothing drifts.
    assert_eq!(record.to_json(), FIXTURE, "fixture serialization drifted");
    // Re-running the frozen case reproduces the recorded divergence
    // structurally: same update, same aware/unaware witness split.
    let (verdict, outcome) = record.replay().expect("fixture case runs");
    assert_eq!(
        verdict,
        ReplayVerdict::Reproduced,
        "the recorded divergence did not come back"
    );
    assert!(outcome.tampered > 0, "the Byzantine block never tampered");
    assert!(outcome.byzantine > 0, "no member was mounted Byzantine");
}

#[test]
fn fuzzer_catches_the_planted_violation_from_the_seed_alone() {
    let report = run_batch(&planted_config()).expect("valid config");
    assert_eq!(report.errors, Vec::<String>::new());
    assert_eq!(
        report.violations.len(),
        1,
        "exactly one of the two cases violates the oracle"
    );
    // The record the fuzzer produces today is byte-identical to the
    // committed fixture: generation, execution and serialization are
    // all functions of the seed.
    assert_eq!(
        report.violations[0].to_json(),
        FIXTURE,
        "the fuzzer no longer reproduces the committed record"
    );
}

#[test]
fn benign_batches_satisfy_the_convergence_oracle() {
    // N = 256 random benign cases across both execution paths; bounded
    // populations/horizon keep the debug-build runtime in check.
    let config = FuzzConfig {
        seed: 2026,
        cases: 256,
        max_population: 20,
        max_rounds: 100,
        ..FuzzConfig::default()
    };
    let report = run_batch(&config).expect("valid config");
    assert!(
        report.is_clean(),
        "benign batch found violations: {:?}",
        report
            .violations
            .iter()
            .map(|r| (r.spec.index, r.divergence.kind()))
            .collect::<Vec<_>>()
    );
    assert_eq!(report.cases_run, 256);
    assert!(report.engine_cases > 0 && report.cluster_cases > 0);
    assert_eq!(report.total_tampered, 0, "benign members must not tamper");
}
