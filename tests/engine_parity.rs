//! Engine-parity golden pins: the sink-based effect API and the
//! allocation-free `SyncEngine` internals (recycled inboxes, in-place
//! availability snapshot, heap-backed timers, O(1) quiescence) must be
//! observationally identical to the historical Vec-returning engine.
//!
//! Every constant below was captured by running the *pre-refactor* engine
//! on these exact scenarios; one scenario per protocol family runs
//! through the refactored stack and must reproduce the signatures bit for
//! bit (awareness fractions are compared via `f64::to_bits`). A drift in
//! any number means the refactor changed RNG call order or effect
//! scheduling — do not update the constants without understanding why.

use rumor::baselines::{
    AntiEntropy, GnutellaFlooding, Gossip1, MongerConfig, MongerStop, PureFlooding, RumorMongering,
};
use rumor::churn::MarkovChurn;
use rumor::core::{ProtocolConfig, PullStrategy};
use rumor::sim::{
    Experiment, PaperProtocol, Protocol, ReplicatedReport, Scenario, UpdateEvent, WorkloadBuilder,
};
use rumor::types::DataKey;

/// `(rounds, total_messages, protocol_messages, aware_online_bits,
/// aware_total_bits)`.
type Signature = (u32, u64, u64, u64, u64);

fn parity_scenario(population: usize, seed: u64) -> Scenario {
    Scenario::builder(population, seed)
        .online_fraction(0.7)
        .churn(MarkovChurn::new(0.97, 0.2).unwrap())
        .loss(0.03)
        .build()
        .unwrap()
}

fn parity_event() -> UpdateEvent {
    UpdateEvent {
        round: 0,
        key: DataKey::from_name("parity"),
        delete: false,
        sequence: 0,
    }
}

fn paper_config(population: usize) -> ProtocolConfig {
    ProtocolConfig::builder(population)
        .fanout_absolute(4)
        .pull_strategy(PullStrategy::Eager)
        .pull_retry(2, 3)
        .staleness_rounds(6)
        .build()
        .unwrap()
}

fn signature<P: Protocol>(protocol: &P, horizon: u32) -> Signature {
    let scenario = parity_scenario(150, 42);
    let mut driver = scenario.drive(protocol);
    let update = driver
        .initiate(protocol, None, &parity_event())
        .expect("someone online");
    let report = driver.track_update(protocol, update, horizon);
    (
        report.rounds,
        report.total_messages,
        report.protocol_messages,
        report.aware_online_fraction.to_bits(),
        report.aware_total_fraction.to_bits(),
    )
}

#[test]
fn paper_peer_signature_is_unchanged() {
    // Exercises every callback: pushes and acks (messages), eager pulls
    // with retry timers (status changes + timers), staleness pulls
    // (round starts).
    assert_eq!(
        signature(&PaperProtocol::new(paper_config(150)), 40),
        (13, 4365, 430, 0x3ff0000000000000, 0x3feeeeeeeeeeeeef),
    );
}

#[test]
fn gnutella_flooding_signature_is_unchanged() {
    assert_eq!(
        signature(&GnutellaFlooding { fanout: 5, ttl: 8 }, 40),
        (7, 650, 0, 0x3fee43790de43791, 0x3febbbbbbbbbbbbc),
    );
}

#[test]
fn pure_flooding_signature_is_unchanged() {
    assert_eq!(
        signature(&PureFlooding { fanout: 4, ttl: 6 }, 40),
        (6, 1996, 0, 0x3ff0000000000000, 0x3fec5f92c5f92c60),
    );
}

#[test]
fn gossip1_signature_is_unchanged() {
    assert_eq!(
        signature(
            &Gossip1 {
                fanout: 5,
                ttl: 8,
                p: 0.8,
                k: 2,
            },
            40,
        ),
        (8, 470, 0, 0x3fec47711dc47712, 0x3fea06d3a06d3a07),
    );
}

#[test]
fn anti_entropy_signature_is_unchanged() {
    assert_eq!(
        signature(&AntiEntropy { push_pull: true }, 60),
        (14, 3104, 0, 0x3ff0000000000000, 0x3fee147ae147ae14),
    );
}

#[test]
fn rumor_mongering_signature_is_unchanged() {
    assert_eq!(
        signature(
            &RumorMongering {
                config: MongerConfig {
                    feedback: true,
                    stop: MongerStop::Coin { k: 4 },
                },
            },
            80,
        ),
        (20, 1473, 0, 0x3ff0000000000000, 0x3fef5c28f5c28f5c),
    );
}

#[test]
fn workload_with_tombstones_signature_is_unchanged() {
    // Writes + tombstones through Simulation::run_workload: pins the
    // Driver::initiate path (sink injection) and per-update convergence
    // bookkeeping.
    let workload = WorkloadBuilder::new(9)
        .rate_per_round(0.3)
        .rounds(20)
        .generate();
    let scenario = Scenario::builder(120, 7)
        .online_fraction(0.6)
        .churn(MarkovChurn::new(0.95, 0.25).unwrap())
        .loss(0.02)
        .workload(workload)
        .build()
        .unwrap();
    let mut sim = scenario.simulation(paper_config(120));
    let report = sim.run_workload(scenario.workload(), 10);
    assert_eq!(report.rounds, 22);
    assert_eq!(report.messages, 6371);
    assert_eq!(report.dropped_events, 0);
    let updates: Vec<(u32, Option<u32>, u64)> = report
        .updates
        .iter()
        .map(|u| {
            (
                u.sequence,
                u.converged_round,
                u.final_aware_online.to_bits(),
            )
        })
        .collect();
    assert_eq!(
        updates,
        vec![
            (0, None, 4606387665924599085),
            (1, None, 4607094112924970928),
        ]
    );
}

#[test]
fn seed_parity_between_runs_and_thread_counts() {
    // The same scenario driven twice replays bit-for-bit, and the
    // replication harness aggregates identically for any worker count
    // (honouring the RUMOR_TEST_THREADS matrix the CI jobs set).
    let protocol = PaperProtocol::new(paper_config(150));
    let run = |threads: usize| -> ReplicatedReport {
        Experiment::new(42, 4)
            .threads(threads)
            .run_replicated(|rep| {
                let scenario = parity_scenario(150, rep.seed);
                let mut driver = scenario.drive(&protocol);
                let update = driver
                    .initiate(&protocol, None, &parity_event())
                    .expect("someone online");
                driver.track_update(&protocol, update, 40)
            })
    };
    let configured: usize = std::env::var("RUMOR_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let base = run(1);
    assert_eq!(base, run(4), "1 vs 4 worker threads");
    assert_eq!(base, run(configured), "1 vs RUMOR_TEST_THREADS workers");
    assert_eq!(base.n, 4);
}
