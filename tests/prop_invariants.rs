//! Property-based invariants across the workspace (proptest).

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor::analysis::{PfSchedule, PushModel, PushParams};
use rumor::core::{
    DiscardStrategy, Lineage, PartialList, ReplicaStore, TruncationPolicy, Update, Value,
    VersionRelation,
};
use rumor::pgrid::Path;
use rumor::types::{DataKey, PeerId, VersionId};

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// An arbitrary lineage built by extending a root `depth` times.
fn lineage_from(seed: u64, depth: usize) -> Lineage {
    let mut r = rng(seed);
    let mut l = Lineage::root(&mut r);
    for _ in 0..depth {
        l = l.child(&mut r);
    }
    l
}

proptest! {
    #[test]
    fn lineage_relation_is_antisymmetric(seed in 0u64..5_000, a in 0usize..6, b in 0usize..6) {
        let base = lineage_from(seed, a.min(b));
        let mut r = rng(seed.wrapping_add(1));
        let mut deep = base.clone();
        for _ in 0..a.max(b) - a.min(b) {
            deep = deep.child(&mut r);
        }
        match deep.relation(&base) {
            VersionRelation::Equal => prop_assert_eq!(base.relation(&deep), VersionRelation::Equal),
            VersionRelation::Dominates => {
                prop_assert_eq!(base.relation(&deep), VersionRelation::DominatedBy)
            }
            VersionRelation::DominatedBy => {
                prop_assert_eq!(base.relation(&deep), VersionRelation::Dominates)
            }
            VersionRelation::Concurrent => {
                prop_assert_eq!(base.relation(&deep), VersionRelation::Concurrent)
            }
        }
    }

    #[test]
    fn lineage_dominance_is_transitive(seed in 0u64..5_000) {
        let mut r = rng(seed);
        let a = Lineage::root(&mut r);
        let b = a.child(&mut r);
        let c = b.child(&mut r);
        prop_assert!(c.covers(&b) && b.covers(&a));
        prop_assert!(c.covers(&a), "covers must be transitive");
    }

    #[test]
    fn store_apply_is_order_independent(
        seed in 0u64..2_000,
        order in proptest::sample::select(vec![0usize, 1, 2, 3, 4, 5])
    ) {
        // Three versions: root -> child, plus a concurrent fork.
        let mut r = rng(seed);
        let key = DataKey::new(1);
        let root = Lineage::root(&mut r);
        let child = root.child(&mut r);
        let fork = root.child(&mut r);
        let updates = [
            Update::write(key, root, Value::from("root"), PeerId::new(0)),
            Update::write(key, child, Value::from("child"), PeerId::new(1)),
            Update::write(key, fork, Value::from("fork"), PeerId::new(2)),
        ];
        let permutations: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let perm = permutations[order];

        let mut reference = ReplicaStore::new();
        for u in &updates {
            reference.apply(u);
        }
        let mut shuffled = ReplicaStore::new();
        for &i in &perm {
            shuffled.apply(&updates[i]);
        }
        prop_assert_eq!(reference.digest(), shuffled.digest());
    }

    #[test]
    fn reconciliation_converges_both_ways(seed in 0u64..2_000, n_a in 0usize..6, n_b in 0usize..6) {
        let mut r = rng(seed);
        let mut a = ReplicaStore::new();
        let mut b = ReplicaStore::new();
        for i in 0..n_a {
            let u = Update::write(
                DataKey::new(i as u64 % 3),
                Lineage::root(&mut r),
                Value::from("a"),
                PeerId::new(0),
            );
            a.apply(&u);
        }
        for i in 0..n_b {
            let u = Update::write(
                DataKey::new(i as u64 % 3),
                Lineage::root(&mut r),
                Value::from("b"),
                PeerId::new(1),
            );
            b.apply(&u);
        }
        // One anti-entropy exchange in each direction.
        let for_b = a.missing_updates_for(&b.digest());
        b.merge_updates(&for_b);
        let for_a = b.missing_updates_for(&a.digest());
        a.merge_updates(&for_a);
        prop_assert!(a.consistent_with(&b), "two-way exchange must converge");
    }

    #[test]
    fn partial_list_truncation_respects_cap(
        entries in proptest::collection::vec(0u32..500, 0..200),
        cap in 0usize..100,
        strategy in proptest::sample::select(vec![
            DiscardStrategy::Head,
            DiscardStrategy::Tail,
            DiscardStrategy::Random,
        ]),
        seed in 0u64..1000,
    ) {
        let mut list = PartialList::from_peers(entries.iter().copied().map(PeerId::new));
        let before = list.len();
        let policy = TruncationPolicy::MaxEntries { cap, discard: strategy };
        let dropped = list.truncate(&policy, 1_000, &mut rng(seed));
        prop_assert_eq!(list.len(), before.min(cap), "post-truncation size");
        prop_assert_eq!(dropped, before - list.len(), "dropped accounting");
        // No duplicates ever.
        let mut seen: Vec<PeerId> = list.iter().collect();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), list.len());
    }

    #[test]
    fn push_model_outputs_are_physical(
        online_frac in 0.01f64..1.0,
        sigma in 0.5f64..1.0,
        f_r in 0.001f64..0.2,
        pf_base in 0.5f64..1.0,
    ) {
        let total = 5_000.0;
        let params = PushParams::new(total, total * online_frac, sigma, f_r)
            .with_pf(PfSchedule::Exponential { base: pf_base });
        let out = PushModel::new(params).run();
        let mut prev_aware = 0.0;
        let mut prev_cum = 0.0;
        for row in &out.rows {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&row.f_aware));
            prop_assert!(row.f_aware >= prev_aware - 1e-12, "awareness monotone");
            prop_assert!(row.messages >= 0.0);
            prop_assert!(row.cum_messages >= prev_cum - 1e-9);
            prop_assert!((0.0..=1.0).contains(&row.list_len));
            prev_aware = row.f_aware;
            prev_cum = row.cum_messages;
        }
        prop_assert!(out.total_messages >= total * f_r - 1e-9, "at least round 0");
    }

    #[test]
    fn digest_contains_exactly_applied_heads(seed in 0u64..2_000, n in 1usize..10) {
        let mut r = rng(seed);
        let mut store = ReplicaStore::new();
        let mut heads = Vec::new();
        for i in 0..n {
            let u = Update::write(
                DataKey::new(i as u64),
                Lineage::root(&mut r),
                Value::from("x"),
                PeerId::new(0),
            );
            heads.push((u.key(), u.lineage().head()));
            store.apply(&u);
        }
        let digest = store.digest();
        for (k, h) in heads {
            prop_assert!(digest.contains(k, h));
        }
        prop_assert_eq!(digest.version_count(), n);
    }

    #[test]
    fn path_prefix_laws(bits_a in any::<u64>(), len_a in 0u8..32, extra in 0u8..16) {
        let a = Path::from_bits(bits_a, len_a);
        let mut b = a;
        for i in 0..extra {
            b = b.child((bits_a >> i) & 1 == 1);
        }
        prop_assert!(a.is_prefix_of(&b));
        prop_assert_eq!(a.common_prefix_len(&b), len_a);
        prop_assert_eq!(b.truncated(len_a), a);
    }

    #[test]
    fn version_id_digest_roundtrip(bits in any::<u128>()) {
        let v = VersionId::from_bits(bits);
        prop_assert_eq!(v.to_bits(), bits);
    }
}
