//! P-Grid × gossip integration: updates run inside overlay partitions and
//! topology data itself is gossipable (§3).

use rand::SeedableRng;
use rumor::churn::OnlineSet;
use rumor::core::{Message, ProtocolConfig, ReplicaPeer, Value};
use rumor::net::{EffectSink, PerfectLinks, SyncEngine};
use rumor::pgrid::{key_to_path, PGrid, RoutingChange};
use rumor::types::{DataKey, PeerId, Round};

fn build_grid(seed: u64) -> PGrid {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    PGrid::build(256, 4, 60, &mut rng)
}

#[test]
fn every_partition_can_host_the_update_protocol() {
    let grid = build_grid(1);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);

    // Pick three keys in different partitions and gossip an update within
    // each partition.
    let keys: Vec<DataKey> = ["a", "b", "c"]
        .iter()
        .map(|n| DataKey::from_name(n))
        .collect();
    for key in keys {
        let partition = grid.replica_partition(key);
        assert!(
            partition.len() >= 4,
            "partition for {} too small: {}",
            key_to_path(key, 4),
            partition.len()
        );
        let n = partition.len();
        // Small fanout plus the no_updates_since pull trigger: any peer
        // the probabilistic push misses catches up by anti-entropy.
        let config = ProtocolConfig::builder(n)
            .fanout_absolute(3)
            .staleness_rounds(6)
            .build()
            .unwrap();
        let mut replicas: Vec<ReplicaPeer> = (0..n)
            .map(|i| {
                let mut p = ReplicaPeer::new(PeerId::new(i as u32), config.clone());
                p.learn_replicas((0..n as u32).map(PeerId::new));
                p
            })
            .collect();
        let online = OnlineSet::all_online(n);
        let mut engine: SyncEngine<Message> = SyncEngine::new(n);
        let mut effects = EffectSink::new();
        let update = replicas[0].initiate_update(
            key,
            Some(Value::from("payload")),
            Round::ZERO,
            &mut rng,
            &mut effects,
        );
        engine.inject(PeerId::new(0), effects.drain());
        for _ in 0..30 {
            engine.step(&mut replicas, &online, &PerfectLinks, &mut rng);
        }
        let aware = replicas
            .iter()
            .filter(|r| r.has_processed(update.id()))
            .count();
        assert_eq!(aware, n, "the whole partition learns the update");
    }
}

#[test]
fn gossiped_routing_change_updates_tables() {
    let mut grid = build_grid(3);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
    let key = DataKey::from_name("routing/epoch-7");
    let partition = grid.replica_partition(key);
    let n = partition.len();

    // As in the test above: the probabilistic push alone covers *nearly*
    // the whole partition (the paper's claim), and the `no_updates_since`
    // pull trigger repairs whatever the flood misses.
    let config = ProtocolConfig::builder(n)
        .fanout_absolute(3)
        .staleness_rounds(6)
        .build()
        .unwrap();
    let mut replicas: Vec<ReplicaPeer> = (0..n)
        .map(|i| {
            let mut p = ReplicaPeer::new(PeerId::new(i as u32), config.clone());
            p.learn_replicas((0..n as u32).map(PeerId::new));
            p
        })
        .collect();

    let change = RoutingChange::new(1, vec![PeerId::new(200), PeerId::new(201)]);
    let payload = Value::from(change.to_bytes());
    let online = OnlineSet::all_online(n);
    let mut engine: SyncEngine<Message> = SyncEngine::new(n);
    let mut effects = EffectSink::new();
    replicas[0].initiate_update(key, Some(payload), Round::ZERO, &mut rng, &mut effects);
    engine.inject(PeerId::new(0), effects.drain());
    // A fixed horizon, not `run_to_quiescence`: the engine considers the
    // system quiescent as soon as the push flood dies out, which is
    // *before* the periodic staleness pull ever fires (by design the
    // hybrid protocol keeps polling and never goes fully quiet).
    for _ in 0..40 {
        engine.step(&mut replicas, &online, &PerfectLinks, &mut rng);
    }

    let mut applied = 0;
    for (local, &overlay_id) in partition.iter().enumerate() {
        let stored = replicas[local].store().get(key).expect("gossip delivered");
        let decoded = RoutingChange::from_bytes(stored.as_bytes()).expect("payload decodes");
        decoded.apply_to(grid.peer_mut(overlay_id));
        applied += 1;
        // The refs are installed (refresh semantics evict if full).
        let refs = grid.peer(overlay_id).routing().level_refs(1);
        assert!(refs.contains(&PeerId::new(200)) && refs.contains(&PeerId::new(201)));
    }
    assert_eq!(applied, n);
}

#[test]
fn partition_sizes_match_paper_expectations() {
    // §2 expects "a few hundred to thousand replicas" per item at scale;
    // at our test scale the point is that partitions are balanced enough
    // for the gossip fanout mathematics to apply uniformly.
    let grid = build_grid(5);
    let sizes = grid.partition_sizes();
    let avg = grid.len() as f64 / sizes.len() as f64;
    for (path, n) in &sizes {
        assert!(
            (*n as f64) > avg * 0.25 && (*n as f64) < avg * 4.0,
            "partition {path} size {n} far from average {avg}"
        );
    }
}
