//! Sharded-executor integration suite: M worker threads hosting N
//! replica cells must (a) converge under churn + loss + crashes like
//! the other two modes, (b) agree with the thread-per-node mode on the
//! converged online population when driven by the identical scenario
//! (same churn, fault and Byzantine substreams), (c) drain flood-style
//! traffic to provable quiescence with exact frame conservation, and
//! (d) track multiple sequential updates correctly — the
//! converged-round reset and initiate-stats-freshness fixes end to end.

use rand_chacha::ChaCha8Rng;
use rumor::churn::{Churn, MarkovChurn, OnlineSet};
use rumor::cluster::{ByzantineBehaviour, ByzantineSpec, ClusterBuilder, FaultSpec};
use rumor::core::{ProtocolConfig, PullStrategy};
use rumor::sim::{PaperProtocol, Scenario, UpdateEvent};
use rumor::types::{DataKey, PeerId};

/// Markov churn active only for the first `until` rounds, so runs have
/// a genuine churn phase *and* a stable convergence check afterwards.
#[derive(Debug, Clone)]
struct WindowedChurn {
    inner: MarkovChurn,
    until: u32,
}

impl Churn for WindowedChurn {
    fn step(&mut self, round: u32, online: &mut OnlineSet, rng: &mut ChaCha8Rng) {
        if round < self.until {
            self.inner.step(round, online, rng);
        }
    }
}

fn cluster_scenario(population: usize, seed: u64, churn_until: u32) -> Scenario {
    Scenario::builder(population, seed)
        .online_fraction(0.75)
        .churn(WindowedChurn {
            inner: MarkovChurn::new(0.95, 0.3).expect("valid churn"),
            until: churn_until,
        })
        .loss(0.05)
        .build()
        .expect("valid scenario")
}

fn paper(population: usize) -> PaperProtocol {
    PaperProtocol::new(
        ProtocolConfig::builder(population)
            .fanout_absolute(4)
            .pull_strategy(PullStrategy::Eager)
            .pull_retry(2, 3)
            .staleness_rounds(6)
            .build()
            .expect("valid config"),
    )
}

fn event(name: &str) -> UpdateEvent {
    UpdateEvent {
        round: 0,
        key: DataKey::from_name(name),
        delete: false,
        sequence: 0,
    }
}

#[test]
fn sharded_cluster_converges_under_churn_loss_and_crashes() {
    // N = 256 on a 4-worker pool under churn, 5% loss and crash faults:
    // the acceptance scenario on the scale path.
    let scenario = cluster_scenario(256, 2027, 60);
    let mut cluster = ClusterBuilder::new(&scenario)
        .faults(FaultSpec {
            crash_rate: 0.10,
            restart_after: 4,
            ..FaultSpec::default()
        })
        .expect("sound fault spec")
        .workers(4)
        .sharded(paper(256));
    assert_eq!(cluster.workers(), 4);
    assert_eq!(cluster.population(), 256);
    let update = cluster
        .initiate(&event("sharded-motd"))
        .expect("someone online");
    // Ride out the churn/fault window first, then require convergence
    // once the environment calms down.
    cluster.run_rounds(60);
    let converged = cluster.run_until_all_online_aware(update, 250);
    assert!(converged.is_some(), "sharded cluster failed to converge");
    assert!(cluster.frames_sent() > 0);
    assert!(cluster.bytes_sent() > cluster.frames_sent() * 6);
    let report = cluster.finish(update);
    assert_eq!(report.online, report.aware_online);
    assert_eq!(report.decode_errors, 0);
    assert!(report.crashes > 0, "fault injector never fired");
    assert!(report.restarts > 0, "no cell was ever un-parked");
    assert!(report.lost_fault > 0, "loss model never fired");
}

#[test]
fn threaded_and_sharded_agree_on_the_converged_population() {
    // The same Scenario drives both real-time modes. Churn, fault and
    // Byzantine substreams are identical, and both conductors consume
    // the control stream identically, so after the same number of
    // rounds the environments match exactly: same online set, same
    // down set, same initiator, same adversaries. Message
    // interleavings (and so per-frame trajectories) differ — the
    // invariants compared are outcome-level.
    let horizon = 200;
    let scenario = cluster_scenario(256, 4243, 50);
    let faults = FaultSpec {
        crash_rate: 0.06,
        restart_after: 4,
        byzantine: ByzantineSpec {
            fraction: 0.05,
            behaviour: ByzantineBehaviour::DigestLie,
        },
    };

    let mut threaded = ClusterBuilder::new(&scenario)
        .faults(faults)
        .expect("sound fault spec")
        .threaded(paper(256));
    let threaded_update = threaded.initiate(&event("parity")).expect("someone online");
    threaded.run_rounds(horizon);
    let threaded_online = threaded.online_peers();
    let threaded_report = threaded.finish(threaded_update);

    let mut sharded = ClusterBuilder::new(&scenario)
        .faults(faults)
        .expect("sound fault spec")
        .workers(4)
        .sharded(paper(256));
    let sharded_update = sharded.initiate(&event("parity")).expect("someone online");
    assert_eq!(
        threaded_update, sharded_update,
        "same control substream must pick the same initiator"
    );
    sharded.run_rounds(horizon);
    let sharded_online = sharded.online_peers();
    let sharded_report = sharded.finish(sharded_update);

    // Identical environment trajectory…
    assert_eq!(
        threaded_online, sharded_online,
        "online populations diverged under the same churn + fault streams"
    );
    assert_eq!(threaded_report.crashes, sharded_report.crashes);
    assert_eq!(threaded_report.restarts, sharded_report.restarts);
    assert_eq!(threaded_report.byzantine, sharded_report.byzantine);
    assert!(threaded_report.byzantine > 0, "no adversary was mounted");
    // …and the same awareness outcome over it: both modes fully
    // converged their online population despite the digest liars.
    assert_eq!(threaded_report.online, threaded_report.aware_online);
    assert_eq!(sharded_report.online, sharded_report.aware_online);
    let threaded_aware_online: Vec<PeerId> = threaded_report
        .aware_set
        .iter()
        .copied()
        .filter(|p| threaded_online.contains(p))
        .collect();
    let sharded_aware_online: Vec<PeerId> = sharded_report
        .aware_set
        .iter()
        .copied()
        .filter(|p| sharded_online.contains(p))
        .collect();
    assert_eq!(
        threaded_aware_online, sharded_aware_online,
        "awareness over the shared online population diverged"
    );
    // Frame conservation holds in both modes: nothing is created or
    // destroyed outside the four consumption buckets (exact equality
    // needs quiescence, which staleness pulls never reach — in-flight
    // frames keep `consumed ≤ sent` an inequality here).
    for report in [&threaded_report, &sharded_report] {
        let consumed = report.frames_delivered
            + report.lost_offline
            + report.lost_fault
            + report.decode_errors;
        assert!(
            consumed <= report.frames_sent,
            "consumed more frames than were ever sent"
        );
        assert_eq!(report.decode_errors, 0, "digest lies stay wire-valid");
        assert!(report.frames_tampered > 0, "liars never lied");
    }
}

#[test]
fn sharded_cluster_drains_to_quiescence_without_round_start_traffic() {
    // Flood-style traffic (no per-round pulls) must quiesce, and the
    // conductor must prove it from the shard reports alone — then the
    // frame ledger balances exactly.
    use rumor::baselines::GnutellaFlooding;
    let scenario = Scenario::builder(96, 5).build().expect("valid scenario");
    let mut cluster = ClusterBuilder::new(&scenario)
        .workers(3)
        .sharded(GnutellaFlooding { fanout: 4, ttl: 6 });
    let update = cluster.initiate(&event("flood")).expect("someone online");
    cluster.run_rounds(30);
    assert!(cluster.is_quiescent(), "flood must drain");
    let report = cluster.finish(update);
    assert_eq!(
        report.frames_sent,
        report.frames_delivered + report.lost_offline + report.lost_fault + report.decode_errors,
        "every frame is accounted exactly once"
    );
    assert!(report.aware_online_fraction() > 0.9);
}

#[test]
fn sharded_cluster_tracks_sequential_updates_independently() {
    // Two updates in one run. The second `run_until_all_online_aware`
    // must measure the *second* update (the probe state resets when the
    // tracked update changes), and `frames_sent()` must reflect the
    // second initiation immediately, not at the next barrier.
    let scenario = cluster_scenario(128, 71, 0);
    let mut cluster = ClusterBuilder::new(&scenario)
        .workers(4)
        .sharded(paper(128));
    let first = cluster.initiate(&event("first")).expect("someone online");
    let first_round = cluster
        .run_until_all_online_aware(first, 120)
        .expect("first update converges");

    let rounds_before_second = cluster.rounds_run();
    let frames_before_second = cluster.frames_sent();
    let second = cluster.initiate(&event("second")).expect("someone online");
    assert_ne!(first, second, "distinct keys must yield distinct updates");
    assert!(
        cluster.frames_sent() > frames_before_second,
        "initiation frames must reach the accounting before the next barrier"
    );
    let second_round = cluster
        .run_until_all_online_aware(second, 120)
        .expect("second update converges");
    assert!(
        second_round >= rounds_before_second,
        "second convergence round {second_round} predates the second \
         initiation at {rounds_before_second} — stale probe state \
         (first converged at {first_round})"
    );
    let report = cluster.finish(second);
    assert_eq!(report.converged_round, Some(second_round));
    assert_eq!(report.online, report.aware_online);
    assert_eq!(report.decode_errors, 0);
}

#[test]
fn worker_count_defaults_to_available_parallelism_and_clamps() {
    // Default worker count mounts and runs; a worker count above the
    // population clamps to one cell per worker.
    let scenario = Scenario::builder(12, 3).build().expect("valid scenario");
    let mut cluster = ClusterBuilder::new(&scenario).sharded(paper(12));
    assert!(cluster.workers() >= 1);
    assert!(cluster.workers() <= 12, "never more workers than cells");
    let update = cluster
        .initiate(&event("defaults"))
        .expect("someone online");
    cluster
        .run_until_all_online_aware(update, 60)
        .expect("converges");
    let report = cluster.finish(update);
    assert_eq!(report.online, report.aware_online);

    let scenario = Scenario::builder(8, 4).build().expect("valid scenario");
    let cluster = ClusterBuilder::new(&scenario).workers(64).sharded(paper(8));
    assert_eq!(cluster.workers(), 8, "worker pool clamps to population");
}
