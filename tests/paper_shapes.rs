//! The headline reproduction claims: every figure and table of the paper
//! holds in *shape* — who wins, by roughly what factor, where the
//! crossovers fall. These assertions are the contract `EXPERIMENTS.md`
//! documents.

use rumor_bench::experiments::{self, Table2Setting};

#[test]
fn fig1_small_online_population_kills_the_rumor_large_does_not() {
    let dead = &experiments::fig1a()[0];
    assert!(dead.died, "1% online: the rumor must die");
    assert!(dead.final_awareness < 0.7);

    let healthy = experiments::fig1b();
    for s in &healthy[1..] {
        assert!(!s.died, "{} must spread", s.label);
    }
    // Cost roughly independent of the initial population (paper: "the
    // message overhead is relatively independent of the online
    // population").
    let costs: Vec<f64> = healthy[1..].iter().map(|s| s.total_per_peer).collect();
    let (min, max) = costs
        .iter()
        .fold((f64::MAX, 0.0f64), |(lo, hi), &c| (lo.min(c), hi.max(c)));
    assert!(max / min < 2.0, "costs within 2x of each other: {costs:?}");
}

#[test]
fn fig2_fanout_multiplies_cost_without_extending_reach() {
    let series = experiments::fig2();
    let c05 = series[0].total_per_peer; // f_r = 0.005
    let c50 = series[3].total_per_peer; // f_r = 0.05
    assert!(
        c50 / c05 > 5.0 && c50 / c05 < 15.0,
        "paper: 8-10x more duplicates; got ratio {}",
        c50 / c05
    );
    let reach_gain = series[3].final_awareness - series[0].final_awareness;
    assert!(
        reach_gain < 0.08,
        "extra fanout buys almost no extra coverage: {reach_gain}"
    );
}

#[test]
fn fig3_algorithm_robust_to_peers_dropping_offline() {
    let series = experiments::fig3();
    // σ from 1.0 down to 0.8: coverage stays high while cost *drops* (the
    // paper's "curiously the message overhead decreases" observation that
    // motivated PF(t)).
    assert!(series[2].final_awareness > 0.95, "σ=0.8 still covers");
    assert!(series[2].total_per_peer < series[0].total_per_peer * 0.6);
}

#[test]
fn fig4_best_strategy_is_decaying_pf() {
    let series = experiments::fig4();
    let pf1 = &series[0];
    let best = series
        .iter()
        .filter(|s| s.final_awareness > 0.95)
        .min_by(|a, b| a.total_per_peer.partial_cmp(&b.total_per_peer).unwrap())
        .expect("some schedule keeps coverage");
    assert_ne!(best.label, pf1.label, "a decaying schedule must win");
    assert!(best.total_per_peer < pf1.total_per_peer * 0.8);
    // Over-aggressive decay sacrifices coverage (the paper's tuning
    // warning).
    let worst = &series[5]; // 0.5^t
    assert!(worst.final_awareness < 0.9);
}

#[test]
fn fig5_overhead_stays_bounded_across_four_orders_of_magnitude() {
    let series = experiments::fig5();
    let costs: Vec<f64> = series.iter().map(|s| s.total_per_peer).collect();
    assert!(
        costs.windows(2).all(|w| w[0] >= w[1]),
        "decreasing: {costs:?}"
    );
    assert!(
        costs.iter().all(|&c| (15.0..45.0).contains(&c)),
        "paper: around 20 messages/peer: {costs:?}"
    );
}

#[test]
fn table2_full_ordering_and_factors() {
    // Setting A — paper: 4 / 3.92 / 3.136 / 2.215 msgs per online peer.
    let a = experiments::table2(Table2Setting::A);
    let m: Vec<f64> = a.iter().map(|r| r.messages_per_online).collect();
    assert!(
        m[0] > m[1] && m[1] > m[2] && m[2] > m[3],
        "A ordering: {m:?}"
    );
    assert!((m[0] - 4.0).abs() < 1e-9);
    assert!(
        (m[1] - 3.92).abs() / 3.92 < 0.05,
        "partial list ≈ paper: {m:?}"
    );
    assert!((m[2] - 3.136).abs() / 3.136 < 0.10, "Haas ≈ paper: {m:?}");
    assert!((m[3] - 2.215).abs() / 2.215 < 0.20, "ours ≈ paper: {m:?}");

    // Setting B — paper: 40 / 35.22 / 28.49 / 16.35.
    let b = experiments::table2(Table2Setting::B);
    let m: Vec<f64> = b.iter().map(|r| r.messages_per_online).collect();
    assert!(
        m[0] > m[1] && m[1] > m[2] && m[2] > m[3],
        "B ordering: {m:?}"
    );
    assert!((m[0] - 40.0).abs() < 1e-9);
    assert!((m[1] - 35.22).abs() / 35.22 < 0.10, "{m:?}");
    assert!((m[2] - 28.49).abs() / 28.49 < 0.10, "{m:?}");
    assert!((m[3] - 16.35).abs() / 16.35 < 0.20, "{m:?}");

    // Ours pays at most a small latency premium (paper: +1 round).
    assert!(a[3].rounds <= a[0].rounds + 3);
    assert!(b[3].rounds <= b[0].rounds + 3);
}

#[test]
fn pull_phase_constant_attempts_suffice() {
    let (rows, attempts_999) = experiments::pull_phase();
    // The paper's §2 sizing: ~65 serial attempts for 99.9% at 10% online.
    assert_eq!(attempts_999, Some(66));
    // Once the push saturated (f_aware = 1), 65 attempts ≈ 99.9%.
    let saturated = rows
        .iter()
        .find(|r| r.f_aware == 1.0 && r.attempts == 65)
        .expect("row exists");
    assert!(saturated.probability > 0.998);
}

#[test]
fn ablations_support_the_design_choices() {
    let list = rumor_bench::ablation::partial_list(7);
    assert!(
        list[0].duplicates < list[2].duplicates,
        "partial list suppresses duplicates: {list:?}"
    );
    let fwd = rumor_bench::ablation::forwarding(7);
    assert!(
        fwd[1].push_cost < fwd[0].push_cost,
        "decaying PF cheaper than PF=1: {fwd:?}"
    );
    assert!(
        fwd[2].awareness > 0.85,
        "self-tuning keeps coverage: {fwd:?}"
    );
}
