//! Trace-determinism gates for `rumor-obs`: the structured trace is a
//! pure function of the seed, never of the executor or its thread
//! schedule, and capturing it never perturbs the run it observes.
//!
//! - A fixed-seed `VirtualCluster` run emits a byte-identical
//!   `TRACE_*.json` artefact on every run — pinned by a golden FNV-1a
//!   digest, so any drift in event emission, ordering or JSON layout is
//!   caught.
//! - The environment sub-trace (round starts, churn, crashes, restarts,
//!   initiations) is byte-identical between the thread-per-node and
//!   sharded executors at N = 256 under churn + crashes + Byzantine
//!   members, and invariant to the sharded worker count (including the
//!   `RUMOR_TEST_THREADS` CI matrix).
//! - Mounting a `MemTracer` on the reference engine driver reproduces
//!   the untraced engine-parity signature bit for bit — tracing draws
//!   no randomness, so the `engine_parity` goldens stand unmodified.

use rand_chacha::ChaCha8Rng;
use rumor::churn::{Churn, MarkovChurn, OnlineSet};
use rumor::cluster::{ByzantineBehaviour, ByzantineSpec, ClusterBuilder, FaultSpec};
use rumor::core::{ProtocolConfig, PullStrategy};
use rumor::obs::{MemTracer, TraceDoc, TRACE_SCHEMA};
use rumor::sim::{PaperProtocol, Scenario, UpdateEvent};
use rumor::types::DataKey;

/// Markov churn active only for the first `until` rounds — the same
/// windowed shape the sharded-executor suite drives.
#[derive(Debug, Clone)]
struct WindowedChurn {
    inner: MarkovChurn,
    until: u32,
}

impl Churn for WindowedChurn {
    fn step(&mut self, round: u32, online: &mut OnlineSet, rng: &mut ChaCha8Rng) {
        if round < self.until {
            self.inner.step(round, online, rng);
        }
    }
}

fn cluster_scenario(population: usize, seed: u64, churn_until: u32) -> Scenario {
    Scenario::builder(population, seed)
        .online_fraction(0.75)
        .churn(WindowedChurn {
            inner: MarkovChurn::new(0.95, 0.3).expect("valid churn"),
            until: churn_until,
        })
        .loss(0.05)
        .build()
        .expect("valid scenario")
}

fn paper(population: usize) -> PaperProtocol {
    PaperProtocol::new(
        ProtocolConfig::builder(population)
            .fanout_absolute(4)
            .pull_strategy(PullStrategy::Eager)
            .pull_retry(2, 3)
            .staleness_rounds(6)
            .build()
            .expect("valid config"),
    )
}

fn event(name: &str) -> UpdateEvent {
    UpdateEvent {
        round: 0,
        key: DataKey::from_name(name),
        delete: false,
        sequence: 0,
    }
}

/// FNV-1a 64 over the artefact bytes: a cheap, dependency-free content
/// pin that makes "byte-identical" a one-number golden.
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn virtual_trace() -> TraceDoc {
    let scenario = cluster_scenario(40, 77, 20);
    let mut cluster = ClusterBuilder::new(&scenario)
        .faults(FaultSpec {
            crash_rate: 0.05,
            restart_after: 3,
            ..FaultSpec::default()
        })
        .expect("sound fault spec")
        .traced()
        .virtual_time(paper(40));
    cluster.initiate(&event("traced")).expect("someone online");
    cluster.run_rounds(30);
    cluster.take_trace("virtual").expect("cluster was traced")
}

#[test]
fn virtual_cluster_trace_is_golden_pinned_byte_for_byte() {
    let artefact = virtual_trace().to_json();
    assert_eq!(
        artefact,
        virtual_trace().to_json(),
        "two identical-seed runs emitted different artefacts"
    );
    assert!(artefact.contains(TRACE_SCHEMA), "schema tag missing");
    // Golden pin: any change to event emission, canonical ordering or
    // the JSON layout moves this digest. Update it only when the trace
    // format is *meant* to change, alongside the schema docs.
    assert_eq!(
        (fnv1a(&artefact), virtual_trace().events.len()),
        (0xec4b_3bd6_b9d3_d0af, 5155),
        "TRACE artefact drifted"
    );
}

#[test]
fn environment_trace_is_identical_across_real_time_executors() {
    // Mirror of the sharded-executor parity scenario: N = 256, churn
    // for 50 rounds, crash faults and a digest-lie block. Message
    // interleavings differ between the modes, so full traces differ —
    // but the environment sub-trace is conductor-driven and must match
    // byte for byte.
    let horizon = 200;
    let scenario = cluster_scenario(256, 4243, 50);
    let faults = FaultSpec {
        crash_rate: 0.06,
        restart_after: 4,
        byzantine: ByzantineSpec {
            fraction: 0.05,
            behaviour: ByzantineBehaviour::DigestLie,
        },
    };

    let mut threaded = ClusterBuilder::new(&scenario)
        .faults(faults)
        .expect("sound fault spec")
        .traced()
        .threaded(paper(256));
    let update = threaded.initiate(&event("parity")).expect("someone online");
    threaded.run_rounds(horizon);
    let (threaded_report, threaded_trace) = threaded.finish_traced(update, "parity");
    let threaded_trace = threaded_trace.expect("threaded cluster was traced");

    let mut sharded = ClusterBuilder::new(&scenario)
        .faults(faults)
        .expect("sound fault spec")
        .traced()
        .workers(4)
        .sharded(paper(256));
    let sharded_update = sharded.initiate(&event("parity")).expect("someone online");
    assert_eq!(update, sharded_update);
    sharded.run_rounds(horizon);
    let (_sharded_report, sharded_trace) = sharded.finish_traced(sharded_update, "parity");
    let sharded_trace = sharded_trace.expect("sharded cluster was traced");

    assert!(
        threaded_report.crashes > 0 && threaded_report.byzantine > 0,
        "the fault schedule never fired"
    );
    let threaded_env = threaded_trace.environment();
    let sharded_env = sharded_trace.environment();
    assert!(
        !threaded_env.events.is_empty(),
        "environment sub-trace is empty"
    );
    assert_eq!(
        threaded_env.to_json(),
        sharded_env.to_json(),
        "environment sub-traces diverged:\n{}",
        threaded_env
            .diff(&sharded_env)
            .unwrap_or_else(|| "(no first divergence found)".into())
    );
}

#[test]
fn environment_trace_is_invariant_to_the_sharded_worker_count() {
    // Same scenario, 1 vs 4 vs RUMOR_TEST_THREADS workers: the shard
    // partition must never leak into the captured environment.
    let run = |workers: usize| -> TraceDoc {
        let scenario = cluster_scenario(96, 909, 25);
        let mut cluster = ClusterBuilder::new(&scenario)
            .faults(FaultSpec {
                crash_rate: 0.08,
                restart_after: 3,
                ..FaultSpec::default()
            })
            .expect("sound fault spec")
            .traced()
            .workers(workers)
            .sharded(paper(96));
        let update = cluster.initiate(&event("workers")).expect("someone online");
        cluster.run_rounds(80);
        let (_, trace) = cluster.finish_traced(update, "workers");
        trace.expect("sharded cluster was traced").environment()
    };
    let configured: usize = std::env::var("RUMOR_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let base = run(1);
    assert!(!base.events.is_empty());
    assert_eq!(
        base.to_json(),
        run(4).to_json(),
        "1 vs 4 workers diverged on the environment"
    );
    assert_eq!(
        base.to_json(),
        run(configured).to_json(),
        "1 vs RUMOR_TEST_THREADS workers diverged on the environment"
    );
}

#[test]
fn mounting_a_tracer_reproduces_the_engine_parity_signature() {
    // The engine-parity golden for the paper protocol, captured on the
    // *untraced* engine. A driver mounted with a `MemTracer` must
    // reproduce it bit for bit: tracing consumes no randomness and
    // schedules no effects.
    let protocol = PaperProtocol::new(
        ProtocolConfig::builder(150)
            .fanout_absolute(4)
            .pull_strategy(PullStrategy::Eager)
            .pull_retry(2, 3)
            .staleness_rounds(6)
            .build()
            .unwrap(),
    );
    let scenario = Scenario::builder(150, 42)
        .online_fraction(0.7)
        .churn(MarkovChurn::new(0.97, 0.2).unwrap())
        .loss(0.03)
        .build()
        .unwrap();
    let mut driver = scenario.drive_traced(&protocol, MemTracer::new());
    let update = driver
        .initiate(&protocol, None, &parity_event())
        .expect("someone online");
    let report = driver.track_update(&protocol, update, 40);
    assert_eq!(
        (
            report.rounds,
            report.total_messages,
            report.protocol_messages,
            report.aware_online_fraction.to_bits(),
            report.aware_total_fraction.to_bits(),
        ),
        (13, 4365, 430, 0x3ff0000000000000, 0x3feeeeeeeeeeeeef),
        "tracing perturbed the engine trajectory"
    );
    let events = driver.tracer_mut().take();
    assert!(!events.is_empty(), "the tracer captured nothing");
}

fn parity_event() -> UpdateEvent {
    UpdateEvent {
        round: 0,
        key: DataKey::from_name("parity"),
        delete: false,
        sequence: 0,
    }
}
