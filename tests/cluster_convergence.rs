//! Live-cluster integration suite: the `rumor-cluster` runtime executes
//! the same sans-IO nodes as the simulator, over encoded `rumor-wire`
//! frames, and must (a) deliver an initiated update to every online
//! replica under churn + loss + crash faults at N ≥ 64, (b) be
//! bit-reproducible in virtual-time mode (golden-pinned), and (c)
//! converge to the same awareness set over the final online population
//! as the `SyncEngine` run of the identical scenario.

use rand_chacha::ChaCha8Rng;
use rumor::churn::{Churn, MarkovChurn, OnlineSet};
use rumor::cluster::{ClusterBuilder, DelaySpec, FaultSpec};
use rumor::core::{ProtocolConfig, PullStrategy};
use rumor::sim::{PaperProtocol, Protocol, Scenario, UpdateEvent};
use rumor::types::{DataKey, PeerId};

/// Markov churn active only for the first `until` rounds, so runs have a
/// genuine churn phase *and* a stable convergence check afterwards.
#[derive(Debug, Clone)]
struct WindowedChurn {
    inner: MarkovChurn,
    until: u32,
}

impl Churn for WindowedChurn {
    fn step(&mut self, round: u32, online: &mut OnlineSet, rng: &mut ChaCha8Rng) {
        if round < self.until {
            self.inner.step(round, online, rng);
        }
    }
}

fn windowed_churn(until: u32) -> WindowedChurn {
    WindowedChurn {
        inner: MarkovChurn::new(0.95, 0.3).expect("valid churn"),
        until,
    }
}

fn cluster_scenario(population: usize, seed: u64, churn_until: u32) -> Scenario {
    Scenario::builder(population, seed)
        .online_fraction(0.75)
        .churn(windowed_churn(churn_until))
        .loss(0.05)
        .build()
        .expect("valid scenario")
}

fn paper(population: usize) -> PaperProtocol {
    PaperProtocol::new(
        ProtocolConfig::builder(population)
            .fanout_absolute(4)
            .pull_strategy(PullStrategy::Eager)
            .pull_retry(2, 3)
            .staleness_rounds(6)
            .build()
            .expect("valid config"),
    )
}

fn event() -> UpdateEvent {
    UpdateEvent {
        round: 0,
        key: DataKey::from_name("cluster-motd"),
        delete: false,
        sequence: 0,
    }
}

#[test]
fn virtual_cluster_delivers_to_every_online_replica_under_faults() {
    // N = 64 under churn, 5% loss, crash/restart faults and extra
    // delivery delay: the acceptance scenario on the deterministic path.
    let scenario = cluster_scenario(64, 2026, 60);
    let mut cluster = ClusterBuilder::new(&scenario)
        .faults(FaultSpec {
            crash_rate: 0.10,
            restart_after: 4,
            ..FaultSpec::default()
        })
        .expect("sound fault spec")
        .delay(DelaySpec {
            max_extra_rounds: 1,
        })
        .virtual_time(paper(64));
    let update = cluster.initiate(&event()).expect("someone online");
    let converged = cluster.run_until_all_online_aware(update, 250);
    assert!(converged.is_some(), "cluster failed to converge");
    let report = cluster.report(update);
    assert_eq!(
        report.online, report.aware_online,
        "an online replica missed the update"
    );
    assert!(report.online > 0);
    assert_eq!(report.decode_errors, 0, "strict codec saw corrupt frames");
    assert!(report.crashes > 0, "fault injector never fired");
    assert!(report.lost_fault > 0, "loss model never fired");
    assert!(
        report.bytes_sent > report.frames_sent * 6,
        "every frame costs at least its header"
    );
}

#[test]
fn virtual_time_mode_is_bit_reproducible_and_golden_pinned() {
    let run = || {
        let scenario = cluster_scenario(64, 77, 40);
        let mut cluster = ClusterBuilder::new(&scenario)
            .faults(FaultSpec {
                crash_rate: 0.05,
                restart_after: 3,
                ..FaultSpec::default()
            })
            .expect("sound fault spec")
            .virtual_time(paper(64));
        let update = cluster.initiate(&event()).expect("someone online");
        cluster.run_rounds(100);
        cluster.report(update)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "virtual-time mode must replay bit-for-bit");
    // Golden pin, captured from the first implementation: a drift in any
    // number means the cluster runtime's RNG consumption, codec sizes or
    // scheduling changed — do not update without understanding why.
    assert_eq!(first.rounds, 100);
    assert_eq!(
        (first.frames_sent, first.bytes_sent),
        (14_352, 366_054),
        "golden traffic totals drifted"
    );
    assert_eq!(
        (
            first.frames_delivered,
            first.lost_offline,
            first.lost_fault,
            first.decode_errors,
        ),
        (12_233, 1_345, 685, 0),
        "golden delivery split drifted"
    );
    assert_eq!(
        (first.crashes, first.restarts, first.aware_set.len()),
        (2, 2, 64),
        "golden fault/awareness outcome drifted"
    );
    assert_eq!((first.online, first.aware_online), (58, 58));
}

#[test]
fn cluster_and_engine_converge_to_the_same_awareness_set() {
    // The same Scenario drives both execution paths: the reference
    // SyncEngine driver and the live virtual-time cluster. Their churn
    // trajectories are identical (same model, same "churn" substream),
    // so after the churn window closes both must converge the *same*
    // final online population — and the cluster must inform exactly the
    // replicas the engine path informs, despite every message having
    // round-tripped through the wire codec.
    let horizon = 160;
    let scenario = cluster_scenario(64, 4242, 50);
    let protocol = paper(64);

    let mut driver = scenario.drive(&protocol);
    let engine_update = driver
        .initiate(&protocol, None, &event())
        .expect("someone online");
    driver.run_rounds(horizon);
    let engine_online: Vec<PeerId> = driver.online().iter_online().collect();
    let engine_aware_online: Vec<PeerId> = engine_online
        .iter()
        .copied()
        .filter(|&p| protocol.is_aware(driver.node(p), engine_update))
        .collect();

    let mut cluster = ClusterBuilder::new(&scenario).virtual_time(paper(64));
    let cluster_update = cluster.initiate(&event()).expect("someone online");
    cluster.run_rounds(horizon);
    let report = cluster.report(cluster_update);
    // The cluster's awareness restricted to the engine's final online
    // population (identical churn trajectory ⇒ identical online set,
    // asserted below via the online counts).
    let cluster_online_set: Vec<PeerId> = report
        .aware_set
        .iter()
        .copied()
        .filter(|p| engine_online.contains(p))
        .collect();

    // Both paths converged their full online population…
    assert_eq!(
        engine_aware_online.len(),
        engine_online.len(),
        "engine path left an online replica unaware"
    );
    assert_eq!(
        report.aware_online, report.online,
        "cluster path left an online replica unaware"
    );
    assert_eq!(
        report.online,
        engine_online.len(),
        "churn trajectories diverged"
    );
    // …and the awareness sets over that shared online population match.
    assert_eq!(
        cluster_online_set, engine_aware_online,
        "cluster and engine awareness sets diverged over the online population"
    );
    assert_eq!(report.decode_errors, 0);
}

#[test]
fn threaded_cluster_converges_with_thread_crashes() {
    // The real-time path: 64 OS threads, churn, loss, real thread
    // crashes and restarts. Nondeterministic interleavings, so the
    // assertions are about outcomes, not trajectories.
    let scenario = cluster_scenario(64, 9, 60);
    let mut cluster = ClusterBuilder::new(&scenario)
        .faults(FaultSpec {
            crash_rate: 0.10,
            restart_after: 4,
            ..FaultSpec::default()
        })
        .expect("sound fault spec")
        .threaded(paper(64));
    let update = cluster.initiate(&event()).expect("someone online");
    // Ride out the whole churn/fault window first (the crash schedule is
    // seeded: this window provably contains crashes), then require
    // convergence once the environment calms down.
    cluster.run_rounds(60);
    let converged = cluster.run_until_all_online_aware(update, 250);
    assert!(converged.is_some(), "threaded cluster failed to converge");
    assert!(cluster.frames_sent() > 0);
    assert!(cluster.bytes_sent() > cluster.frames_sent() * 6);
    let report = cluster.finish(update);
    assert_eq!(report.online, report.aware_online);
    assert_eq!(report.decode_errors, 0);
    assert!(report.crashes > 0, "no thread was ever crashed");
    assert!(report.restarts > 0, "no thread was ever restarted");
}

#[test]
fn virtual_cluster_reports_the_second_updates_convergence_round() {
    // Regression: `converged_round` was never reset, so a second
    // tracked update's report carried the *first* update's round.
    let scenario = cluster_scenario(48, 13, 0);
    let mut cluster = ClusterBuilder::new(&scenario).virtual_time(paper(48));
    let first = cluster.initiate(&event()).expect("someone online");
    let first_round = cluster
        .run_until_all_online_aware(first, 100)
        .expect("first update converges");

    let rounds_before_second = cluster.rounds_run();
    let second_event = UpdateEvent {
        round: rounds_before_second,
        key: DataKey::from_name("cluster-motd-2"),
        delete: false,
        sequence: 1,
    };
    let second = cluster.initiate(&second_event).expect("someone online");
    assert_ne!(first, second);
    let second_round = cluster
        .run_until_all_online_aware(second, 100)
        .expect("second update converges");
    assert!(
        second_round >= rounds_before_second,
        "second convergence round {second_round} predates the second \
         initiation at {rounds_before_second} — stale probe state \
         (first converged at {first_round})"
    );
    assert_eq!(cluster.report(second).converged_round, Some(second_round));
}

#[test]
fn threaded_cluster_tracks_sequential_updates_independently() {
    // Regression for two conductor-side staleness bugs: the probe state
    // must reset when the tracked update changes, and frames sent while
    // handling an initiation must reach `frames_sent()` immediately
    // rather than at the next barrier (or never, if the worker crashes
    // before its next tick).
    let scenario = cluster_scenario(48, 15, 0);
    let mut cluster = ClusterBuilder::new(&scenario).threaded(paper(48));
    let first = cluster.initiate(&event()).expect("someone online");
    let first_round = cluster
        .run_until_all_online_aware(first, 100)
        .expect("first update converges");

    let rounds_before_second = cluster.rounds_run();
    let frames_before_second = cluster.frames_sent();
    let second_event = UpdateEvent {
        round: rounds_before_second,
        key: DataKey::from_name("cluster-motd-2"),
        delete: false,
        sequence: 1,
    };
    let second = cluster.initiate(&second_event).expect("someone online");
    assert_ne!(first, second);
    assert!(
        cluster.frames_sent() > frames_before_second,
        "initiation frames must reach the accounting before the next barrier"
    );
    let second_round = cluster
        .run_until_all_online_aware(second, 100)
        .expect("second update converges");
    assert!(
        second_round >= rounds_before_second,
        "second convergence round {second_round} predates the second \
         initiation at {rounds_before_second} — stale probe state \
         (first converged at {first_round})"
    );
    let report = cluster.finish(second);
    assert_eq!(report.converged_round, Some(second_round));
    assert_eq!(report.online, report.aware_online);
}

#[test]
fn threaded_cluster_drains_to_quiescence_without_round_start_traffic() {
    // Flood-style traffic (no per-round pulls) must quiesce: every frame
    // sent is eventually consumed and the conductor can prove it from
    // the barrier reports alone.
    use rumor::baselines::GnutellaFlooding;
    let scenario = Scenario::builder(24, 5).build().expect("valid scenario");
    let mut cluster =
        ClusterBuilder::new(&scenario).threaded(GnutellaFlooding { fanout: 4, ttl: 6 });
    let update = cluster.initiate(&event()).expect("someone online");
    cluster.run_rounds(30);
    assert!(cluster.is_quiescent(), "flood must drain");
    let report = cluster.finish(update);
    assert_eq!(
        report.frames_sent,
        report.frames_delivered + report.lost_offline + report.lost_fault + report.decode_errors,
        "every frame is accounted exactly once"
    );
    assert!(report.aware_online_fraction() > 0.9);
}
