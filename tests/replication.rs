//! The replication-harness determinism suite: one `Experiment`, many
//! worker-thread counts, byte-identical `ReplicatedReport`s.
//!
//! CI runs `cargo test` twice with `RUMOR_TEST_THREADS=1` and `=4`; the
//! suite compares the env-selected worker count against the sequential
//! baseline (and a few fixed counts), so thread-count invariance is
//! enforced on every push no matter which runner executes it.

use rumor::churn::MarkovChurn;
use rumor::core::ProtocolConfig;
use rumor::sim::{Experiment, ReplicatedReport, Scenario, TopologySpec};
use rumor::types::DataKey;

/// Worker count under test: `RUMOR_TEST_THREADS` when set (CI matrix),
/// otherwise 4.
fn env_threads() -> usize {
    std::env::var("RUMOR_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// A deliberately non-trivial replication body: churn, partial
/// knowledge, message loss — every seeded stream in play.
fn replicated(threads: usize) -> ReplicatedReport {
    let experiment = Experiment::new(2024, 10).threads(threads);
    let reports = experiment.run(|rep| {
        let scenario = Scenario::builder(150, rep.seed)
            .online_fraction(0.4)
            .topology(TopologySpec::RandomSubset { k: 30 })
            .churn(MarkovChurn::new(0.92, 0.04).expect("valid churn"))
            .loss(0.05)
            .build()
            .expect("valid scenario");
        let config = ProtocolConfig::builder(150)
            .fanout_absolute(5)
            .build()
            .expect("valid config");
        let mut sim = scenario.simulation(config);
        sim.propagate(DataKey::from_name("det-suite"), "payload", 60)
    });
    ReplicatedReport::from_push(&reports)
}

#[test]
fn replicated_report_is_byte_identical_across_thread_counts() {
    let baseline = replicated(1);
    for threads in [2, 8, env_threads()] {
        let parallel = replicated(threads);
        assert_eq!(
            baseline, parallel,
            "ReplicatedReport diverged at {threads} worker threads"
        );
        // Byte-identical, not just PartialEq: the serialised artefact
        // must not depend on scheduling either.
        assert_eq!(
            format!("{baseline:?}"),
            format!("{parallel:?}"),
            "debug serialisation diverged at {threads} worker threads"
        );
    }
}

#[test]
fn golden_replicated_aggregate_is_pinned() {
    // Golden pin over the whole pipeline (seed derivation → scenario
    // build → driver → aggregation). If this fails, the replication
    // seed stream or the simulation itself changed behaviour — update
    // the constants only for a deliberate, documented change.
    let agg = replicated(env_threads());
    assert_eq!(agg.n, 10);
    assert_eq!(agg.rounds.n(), 10);
    assert!(
        (agg.total_messages.mean() - 696.7).abs() < 1e-9,
        "total_messages mean drifted: {}",
        agg.total_messages.mean()
    );
    assert_eq!(agg.total_messages.min(), 144.0);
    assert_eq!(agg.total_messages.max(), 1596.0);
    assert!(
        (agg.rounds.mean() - 25.7).abs() < 1e-9,
        "rounds mean drifted: {}",
        agg.rounds.mean()
    );
    assert!(
        (agg.aware_online_fraction.mean() - 0.421_700_429_724_014_67).abs() < 1e-12,
        "awareness mean drifted: {}",
        agg.aware_online_fraction.mean()
    );
}

#[test]
fn substream_trajectories_differ_but_replay_exactly() {
    // Seed-independence at the full-pipeline level: distinct substreams
    // of one master seed produce distinct trajectories, while re-running
    // the experiment replays every replication bit for bit.
    let experiment = Experiment::new(77, 6).threads(env_threads());
    let run = || {
        experiment.run(|rep| {
            let scenario = Scenario::builder(100, rep.seed)
                .online_fraction(0.5)
                .build()
                .expect("valid scenario");
            let config = ProtocolConfig::builder(100)
                .fanout_absolute(4)
                .build()
                .expect("valid config");
            let mut sim = scenario.simulation(config);
            let r = sim.propagate(DataKey::from_name("indep"), "v", 50);
            (r.total_messages, r.push_messages, r.rounds)
        })
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same substream must replay identically");
    let distinct: std::collections::HashSet<_> = first.iter().collect();
    assert!(
        distinct.len() > 1,
        "substreams must diverge in trajectory: {first:?}"
    );
}
