//! The protocol under the asynchronous event engine: §4.1 notes the round
//! model "does not mean that we need synchronous rounds … messages of
//! different push rounds live in the network at the same instant of
//! time". The same `ReplicaPeer` state machine must therefore work,
//! unchanged, under sampled latencies and continuous on/off churn.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor::churn::{OnOffProcess, OnlineSet};
use rumor::core::{Message, ProtocolConfig, PullStrategy, ReplicaPeer, Value};
use rumor::net::{EffectSink, EventEngine, EventEngineConfig, LatencyModel};
use rumor::types::{DataKey, PeerId, Round, Tick};

fn population(n: usize, config: &ProtocolConfig) -> Vec<ReplicaPeer> {
    (0..n)
        .map(|i| {
            let mut p = ReplicaPeer::new(PeerId::new(i as u32), config.clone());
            p.learn_replicas((0..n as u32).map(PeerId::new));
            p
        })
        .collect()
}

#[test]
fn push_spreads_under_variable_latency() {
    let n = 300;
    let config = ProtocolConfig::builder(n)
        .fanout_absolute(6)
        .pull_strategy(PullStrategy::OnDemand)
        .build()
        .unwrap();
    let mut nodes = population(n, &config);
    let mut online = OnlineSet::all_online(n);
    let engine_cfg = EventEngineConfig {
        latency: LatencyModel::Uniform { lo: 2, hi: 30 }, // rounds interleave
        loss: 0.0,
        ticks_per_round: 10,
    };
    let mut engine: EventEngine<Message> = EventEngine::new(engine_cfg, n);
    let mut rng = ChaCha8Rng::seed_from_u64(5);

    let mut effects = EffectSink::new();
    let update = nodes[0].initiate_update(
        DataKey::from_name("async"),
        Some(Value::from("v")),
        Round::ZERO,
        &mut rng,
        &mut effects,
    );
    engine.inject(PeerId::new(0), effects.drain(), &mut rng);
    engine.run(&mut nodes, &mut online, None, Tick::new(2_000), &mut rng);

    let aware = nodes
        .iter()
        .filter(|p| p.has_processed(update.id()))
        .count();
    assert!(
        aware as f64 / n as f64 > 0.95,
        "async push must reach (nearly) everyone: {aware}/{n}"
    );
}

#[test]
fn message_loss_degrades_but_does_not_stop_the_epidemic() {
    let n = 300;
    let run = |loss: f64| {
        let config = ProtocolConfig::builder(n)
            .fanout_absolute(8)
            .pull_strategy(PullStrategy::OnDemand)
            .build()
            .unwrap();
        let mut nodes = population(n, &config);
        let mut online = OnlineSet::all_online(n);
        let mut engine: EventEngine<Message> = EventEngine::new(
            EventEngineConfig {
                latency: LatencyModel::Constant { ticks: 5 },
                loss,
                ticks_per_round: 5,
            },
            n,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut effects = EffectSink::new();
        let update = nodes[0].initiate_update(
            DataKey::from_name("lossy"),
            Some(Value::from("v")),
            Round::ZERO,
            &mut rng,
            &mut effects,
        );
        engine.inject(PeerId::new(0), effects.drain(), &mut rng);
        engine.run(&mut nodes, &mut online, None, Tick::new(2_000), &mut rng);
        nodes
            .iter()
            .filter(|p| p.has_processed(update.id()))
            .count() as f64
            / n as f64
    };
    let clean = run(0.0);
    let lossy = run(0.3);
    assert!(clean > 0.95);
    assert!(lossy > 0.8, "30% loss survivable at fanout 8, got {lossy}");
    assert!(lossy <= clean + 1e-9);
}

#[test]
fn continuous_churn_with_eager_pull_recovers_returning_peers() {
    let n = 200;
    let config = ProtocolConfig::builder(n)
        .fanout_absolute(8)
        .pull_strategy(PullStrategy::Eager)
        .pull_fanout(4)
        .pull_retry(20, 5) // delays are in ticks under the event engine
        .build()
        .unwrap();
    let mut nodes = population(n, &config);
    // Half the peers start offline; dwell times keep everyone cycling.
    let mut online = OnlineSet::with_online_count(n, n / 2);
    for node in nodes.iter_mut().skip(n / 2) {
        node.set_initially_offline();
    }
    let process = OnOffProcess::new(300.0, 100.0).unwrap(); // 75% availability
    let mut engine: EventEngine<Message> = EventEngine::new(
        EventEngineConfig {
            latency: LatencyModel::Exponential { min: 2, mean: 8.0 },
            loss: 0.0,
            ticks_per_round: 10,
        },
        n,
    );
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    engine.schedule_churn(&online, &process, &mut rng);

    let mut effects = EffectSink::new();
    let update = nodes[0].initiate_update(
        DataKey::from_name("churny"),
        Some(Value::from("v")),
        Round::ZERO,
        &mut rng,
        &mut effects,
    );
    engine.inject(PeerId::new(0), effects.drain(), &mut rng);
    engine.run(
        &mut nodes,
        &mut online,
        Some(&process),
        Tick::new(5_000),
        &mut rng,
    );

    let aware = nodes
        .iter()
        .filter(|p| p.has_processed(update.id()))
        .count();
    assert!(
        aware as f64 / n as f64 > 0.9,
        "push + eager pull under continuous churn: {aware}/{n}"
    );
    // Pull traffic actually happened (the push alone cannot reach peers
    // that were offline the whole push window).
    let pulls: u64 = nodes.iter().map(|p| p.stats().pulls_initiated).sum();
    assert!(pulls > 0, "returning peers must have pulled");
}

#[test]
fn sync_and_async_engines_agree_on_coverage() {
    // Same protocol, same population: the synchronous round engine and
    // the event engine with constant latency must land on statistically
    // similar coverage.
    let n = 400;
    let config = ProtocolConfig::builder(n)
        .fanout_absolute(5)
        .pull_strategy(PullStrategy::OnDemand)
        .build()
        .unwrap();

    // Async run.
    let async_aware = {
        let mut nodes = population(n, &config);
        let mut online = OnlineSet::all_online(n);
        let mut engine: EventEngine<Message> = EventEngine::new(EventEngineConfig::default(), n);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut effects = EffectSink::new();
        let update = nodes[0].initiate_update(
            DataKey::from_name("agree"),
            Some(Value::from("v")),
            Round::ZERO,
            &mut rng,
            &mut effects,
        );
        engine.inject(PeerId::new(0), effects.drain(), &mut rng);
        engine.run(&mut nodes, &mut online, None, Tick::new(1_000), &mut rng);
        nodes
            .iter()
            .filter(|p| p.has_processed(update.id()))
            .count() as f64
            / n as f64
    };

    // Sync run via the simulator.
    let sync_aware = {
        let mut sim = rumor::sim::SimulationBuilder::new(n, 8)
            .protocol(config)
            .build()
            .unwrap();
        let report = sim.propagate(DataKey::from_name("agree"), "v", 60);
        report.aware_online_fraction
    };

    assert!(
        (async_aware - sync_aware).abs() < 0.05,
        "engines disagree: async {async_aware} vs sync {sync_aware}"
    );
}
