//! Wire-codec round-trip properties: `decode(encode(m)) == m` for every
//! message variant of every protocol family, plus strict rejection of
//! truncated, padded and foreign-version frames.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor::baselines::{DemersMsg, FloodMsg};
use rumor::core::{Lineage, Message, PartialList, PushMessage, StoreDigest, Update, Value};
use rumor::types::{DataKey, PeerId, UpdateId, VersionId};
use rumor::wire::{
    decode_frame, encode_frame, frame_len, WireError, FRAME_HEADER_BYTES, WIRE_VERSION,
};

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// An update with `depth + 1` lineage entries; tombstone when asked.
fn update(seed: u64, depth: usize, tombstone: bool, payload_len: usize) -> Update {
    let mut r = rng(seed);
    let key = DataKey::new(seed.wrapping_mul(31));
    let mut lineage = Lineage::root(&mut r);
    for _ in 0..depth {
        lineage = lineage.child(&mut r);
    }
    let origin = PeerId::new((seed % 1024) as u32);
    if tombstone {
        Update::tombstone(key, lineage, origin)
    } else {
        Update::write(key, lineage, Value::from(vec![0xAB; payload_len]), origin)
    }
}

fn roundtrip(msg: &Message) {
    let frame = encode_frame(msg);
    assert_eq!(frame.len(), frame_len(msg), "sizer must be exact");
    let decoded: Message = decode_frame(&frame).expect("round-trip decode");
    assert_eq!(&decoded, msg);
    // The legacy inline-tag format stays byte-compatible: frame payload
    // is exactly the inline encoding minus its leading tag.
    assert_eq!(&frame[FRAME_HEADER_BYTES..], &msg.encode()[1..]);
}

proptest! {
    #[test]
    fn push_roundtrips_any_list_and_lineage(
        seed in 0u64..10_000,
        depth in 0usize..6,
        tombstone in any::<bool>(),
        payload_len in 0usize..64,
        push_round in 0u32..512,
        list_len in 0usize..300,
    ) {
        let msg = Message::Push(PushMessage {
            update: update(seed, depth, tombstone, payload_len),
            push_round,
            flood_list: PartialList::from_peers((0..list_len as u32).map(PeerId::new)),
        });
        roundtrip(&msg);
    }

    #[test]
    fn pull_request_roundtrips_any_digest(
        seed in 0u64..10_000,
        keys in 0usize..12,
        heads_per_key in 1usize..5,
    ) {
        let mut digest = StoreDigest::new();
        for k in 0..keys {
            for h in 0..heads_per_key {
                digest.insert(
                    DataKey::new(seed.wrapping_add(k as u64)),
                    VersionId::from_bits((seed as u128) << 32 | (k * 7 + h) as u128),
                );
            }
        }
        roundtrip(&Message::PullRequest { digest });
    }

    #[test]
    fn pull_response_roundtrips_mixed_updates(
        seed in 0u64..10_000,
        count in 0usize..8,
    ) {
        let updates: Vec<Update> = (0..count)
            .map(|i| update(seed.wrapping_add(i as u64), i % 4, i % 3 == 0, i * 5))
            .collect();
        roundtrip(&Message::PullResponse { updates });
    }

    #[test]
    fn ack_roundtrips(bits in any::<u128>()) {
        roundtrip(&Message::Ack { update_id: UpdateId::from_bits(bits) });
    }

    #[test]
    fn flood_msg_roundtrips(bits in any::<u128>(), ttl in 0u32..64, hops in 0u32..64) {
        let msg = FloodMsg { rumor: UpdateId::from_bits(bits), ttl, hops };
        let frame = encode_frame(&msg);
        prop_assert_eq!(frame.len(), frame_len(&msg));
        prop_assert_eq!(decode_frame::<FloodMsg>(&frame).unwrap(), msg);
    }

    #[test]
    fn demers_msgs_roundtrip(
        seed in 0u64..10_000,
        known_len in 0usize..40,
        variant in proptest::sample::select(vec![0usize, 1, 2]),
        flag in any::<bool>(),
    ) {
        let msg = match variant {
            0 => DemersMsg::Digest {
                known: (0..known_len)
                    .map(|i| UpdateId::from_bits(seed as u128 * 131 + i as u128))
                    .collect(),
                reply: flag,
            },
            1 => DemersMsg::Rumor { rumor: UpdateId::from_bits(seed as u128) },
            _ => DemersMsg::Feedback {
                rumor: UpdateId::from_bits(seed as u128),
                already_knew: flag,
            },
        };
        let frame = encode_frame(&msg);
        prop_assert_eq!(frame.len(), frame_len(&msg));
        prop_assert_eq!(decode_frame::<DemersMsg>(&frame).unwrap(), msg);
    }

    #[test]
    fn every_truncation_of_a_push_frame_is_rejected(
        seed in 0u64..2_000,
        list_len in 0usize..40,
        cut_frac in 0u32..1000,
    ) {
        let msg = Message::Push(PushMessage {
            update: update(seed, 2, false, 16),
            push_round: 1,
            flood_list: PartialList::from_peers((0..list_len as u32).map(PeerId::new)),
        });
        let frame = encode_frame(&msg);
        let cut = (frame.len() as u64 * u64::from(cut_frac) / 1000) as usize;
        prop_assert!(cut < frame.len());
        prop_assert!(decode_frame::<Message>(&frame[..cut]).is_err());
    }
}

#[test]
fn empty_and_max_length_partial_lists_roundtrip() {
    // Empty list and a paper-scale "everyone already has it" list.
    for list_len in [0usize, 1, 10_000] {
        let msg = Message::Push(PushMessage {
            update: update(9, 3, false, 32),
            push_round: 7,
            flood_list: PartialList::from_peers((0..list_len as u32).map(PeerId::new)),
        });
        roundtrip(&msg);
    }
}

#[test]
fn tombstone_and_empty_pull_response_roundtrip() {
    roundtrip(&Message::Push(PushMessage {
        update: update(4, 0, true, 0),
        push_round: 0,
        flood_list: PartialList::new(),
    }));
    roundtrip(&Message::PullResponse {
        updates: Vec::new(),
    });
    roundtrip(&Message::PullRequest {
        digest: StoreDigest::new(),
    });
}

#[test]
fn bad_version_frames_are_rejected_with_the_found_version() {
    let msg = Message::Ack {
        update_id: UpdateId::from_bits(1),
    };
    let mut bytes = encode_frame(&msg).to_vec();
    for foreign in [0u8, WIRE_VERSION + 1, 0xFF] {
        bytes[0] = foreign;
        assert_eq!(
            decode_frame::<Message>(&bytes),
            Err(WireError::BadVersion { found: foreign })
        );
    }
}

#[test]
fn truncated_headers_and_padded_frames_are_rejected() {
    let msg = Message::Ack {
        update_id: UpdateId::from_bits(7),
    };
    let frame = encode_frame(&msg);
    for cut in 0..FRAME_HEADER_BYTES {
        assert!(matches!(
            decode_frame::<Message>(&frame[..cut]),
            Err(WireError::Truncated { .. })
        ));
    }
    let mut padded = frame.to_vec();
    padded.push(0);
    assert!(matches!(
        decode_frame::<Message>(&padded),
        Err(WireError::LengthMismatch { .. })
    ));
}

#[test]
fn unknown_kind_is_rejected_for_every_family() {
    let mut core = encode_frame(&Message::Ack {
        update_id: UpdateId::from_bits(1),
    })
    .to_vec();
    core[1] = 250;
    assert_eq!(
        decode_frame::<Message>(&core),
        Err(WireError::UnknownKind { kind: 250 })
    );
    let mut flood = encode_frame(&FloodMsg {
        rumor: UpdateId::from_bits(1),
        ttl: 1,
        hops: 0,
    })
    .to_vec();
    flood[1] = 99;
    assert!(matches!(
        decode_frame::<FloodMsg>(&flood),
        Err(WireError::UnknownKind { kind: 99 })
    ));
    let mut demers = encode_frame(&DemersMsg::Rumor {
        rumor: UpdateId::from_bits(1),
    })
    .to_vec();
    demers[1] = 77;
    assert!(matches!(
        decode_frame::<DemersMsg>(&demers),
        Err(WireError::UnknownKind { kind: 77 })
    ));
}
