//! Wire-v2 integration properties over the real protocol message set:
//! `decode ∘ encode = id` for every v2 construct (batch frames, delta
//! pulls, the empty batch, a 10k-entry delta), strict rejection at
//! every sub-frame boundary, and behavioural equivalence — digest-delta
//! pulls converge in exactly the same round as full-digest pulls on
//! identical scenario seeds.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rumor::churn::MarkovChurn;
use rumor::cluster::{ClusterBuilder, ClusterReport, WireVersion};
use rumor::core::{
    Lineage, Message, PartialList, ProtocolConfig, PullStrategy, PushMessage, StoreDigest, Update,
    Value,
};
use rumor::sim::{PaperProtocol, Scenario, TopologySpec, UpdateEvent};
use rumor::types::{DataKey, PeerId, UpdateId, VersionId};
use rumor::wire::{
    batch_frame_len, decode_frame, decode_frame_v2, encode_frame, BatchEncoder, WireError,
    BATCH_SUBHEADER_BYTES, FRAME_HEADER_BYTES,
};

fn update(seed: u64, depth: usize, tombstone: bool, payload_len: usize) -> Update {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    let key = DataKey::new(seed.wrapping_mul(31));
    let mut lineage = Lineage::root(&mut r);
    for _ in 0..depth {
        lineage = lineage.child(&mut r);
    }
    let origin = PeerId::new((seed % 1024) as u32);
    if tombstone {
        Update::tombstone(key, lineage, origin)
    } else {
        Update::write(key, lineage, Value::from(vec![0xCD; payload_len]), origin)
    }
}

/// One protocol message of the chosen variant, covering both v1 and
/// v2-only kinds.
fn message(variant: usize, seed: u64) -> Message {
    match variant % 6 {
        0 => Message::Push(PushMessage {
            update: update(
                seed,
                (seed % 4) as usize,
                seed.is_multiple_of(5),
                (seed % 48) as usize,
            ),
            push_round: (seed % 300) as u32,
            flood_list: PartialList::from_peers((0..(seed % 20) as u32).map(PeerId::new)),
        }),
        1 => {
            let mut digest = StoreDigest::new();
            for k in 0..(seed % 6) {
                digest.insert(
                    DataKey::new(seed.wrapping_add(k)),
                    VersionId::from_bits((seed as u128) << 32 | k as u128),
                );
            }
            Message::PullRequest { digest }
        }
        2 => Message::PullResponse {
            updates: (0..(seed % 4))
                .map(|i| update(seed.wrapping_add(i), 1, false, 8))
                .collect(),
        },
        3 => Message::Ack {
            update_id: UpdateId::from_bits(seed as u128 * 97),
        },
        4 => Message::PullSince { since: seed * 13 },
        _ => Message::DeltaResponse {
            upto: seed * 7,
            updates: (0..(seed % 3))
                .map(|i| update(seed.wrapping_add(i * 11), 2, i == 1, 12))
                .collect(),
        },
    }
}

fn decode_v2(frame: &rumor::wire::Bytes) -> Result<Vec<Message>, WireError> {
    let mut out = Vec::new();
    decode_frame_v2(frame, &mut out)?;
    Ok(out)
}

proptest! {
    #[test]
    fn any_batch_of_protocol_messages_roundtrips(
        seed in 0u64..5_000,
        picks in proptest::collection::vec(0usize..6, 1..12),
    ) {
        let msgs: Vec<Message> = picks
            .iter()
            .enumerate()
            .map(|(i, &v)| message(v, seed.wrapping_add(i as u64 * 17)))
            .collect();
        let mut enc = BatchEncoder::new();
        for m in &msgs {
            enc.push(m);
        }
        let frame = enc.finish();
        prop_assert_eq!(frame.len(), batch_frame_len(msgs.iter()));
        prop_assert_eq!(decode_v2(&frame).unwrap(), msgs);
        // The strict v1 decoder refuses the whole batch by version.
        prop_assert_eq!(
            decode_frame::<Message>(&frame),
            Err(WireError::BadVersion { found: 2 })
        );
    }

    #[test]
    fn v2_kinds_roundtrip_as_single_frames_and_v1_rejects_them(
        since in any::<u64>(),
        upto in any::<u64>(),
        count in 0u64..6,
    ) {
        for msg in [
            Message::PullSince { since },
            Message::DeltaResponse {
                upto,
                updates: (0..count).map(|i| update(i + 3, 1, false, 10)).collect(),
            },
        ] {
            let frame = encode_frame(&msg);
            prop_assert_eq!(decode_v2(&frame).unwrap(), vec![msg]);
            prop_assert_eq!(
                decode_frame::<Message>(&frame),
                Err(WireError::BadVersion { found: 2 })
            );
        }
    }

    #[test]
    fn v1_kinds_still_roundtrip_through_the_v2_decoder(
        seed in 0u64..5_000,
        variant in 0usize..4,
    ) {
        let msg = message(variant, seed);
        let frame = encode_frame(&msg);
        prop_assert_eq!(decode_v2(&frame).unwrap(), vec![msg.clone()]);
        // And the v1 decoder agrees on its own kinds.
        prop_assert_eq!(decode_frame::<Message>(&frame).unwrap(), msg);
    }
}

#[test]
fn empty_batch_decodes_to_no_messages() {
    let frame = BatchEncoder::new().finish();
    assert_eq!(frame.len(), FRAME_HEADER_BYTES + 4);
    assert_eq!(decode_v2(&frame).unwrap(), Vec::<Message>::new());
}

#[test]
fn a_ten_thousand_entry_delta_roundtrips_inside_a_batch() {
    let updates: Vec<Update> = (0..10_000)
        .map(|i| update(i, (i % 3) as usize, i.is_multiple_of(7), (i % 24) as usize))
        .collect();
    let delta = Message::DeltaResponse {
        upto: 10_000,
        updates,
    };
    let mut enc = BatchEncoder::new();
    enc.push(&Message::PullSince { since: 4 });
    enc.push(&delta);
    let frame = enc.finish();
    let decoded = decode_v2(&frame).unwrap();
    assert_eq!(decoded.len(), 2);
    assert_eq!(decoded[0], Message::PullSince { since: 4 });
    assert_eq!(decoded[1], delta);
}

#[test]
fn truncation_at_each_sub_frame_boundary_is_rejected() {
    let msgs = [
        message(0, 11),
        Message::PullSince { since: 9 },
        message(5, 23),
    ];
    let mut enc = BatchEncoder::new();
    let mut boundaries = vec![FRAME_HEADER_BYTES + 4];
    for m in &msgs {
        enc.push(m);
        let last = *boundaries.last().unwrap();
        boundaries.push(last + BATCH_SUBHEADER_BYTES + encode_frame(m).len() - FRAME_HEADER_BYTES);
    }
    let full = enc.finish().to_vec();
    assert_eq!(*boundaries.last().unwrap(), full.len());
    // Cutting exactly at a sub-frame boundary (with the outer length
    // fixed up so the cut reaches the batch parser) starves the declared
    // count — every prefix must fail, and the full frame must not.
    for &boundary in &boundaries[..boundaries.len() - 1] {
        let mut bytes = full[..boundary].to_vec();
        let declared = (boundary - FRAME_HEADER_BYTES) as u32;
        bytes[2..6].copy_from_slice(&declared.to_be_bytes());
        assert!(
            decode_v2(&rumor::wire::Bytes::from(bytes)).is_err(),
            "cut at sub-frame boundary {boundary} must fail"
        );
    }
    assert_eq!(
        decode_v2(&rumor::wire::Bytes::from(full)).unwrap().len(),
        msgs.len()
    );
}

fn equivalence_scenario(seed: u64) -> Scenario {
    Scenario::builder(32, seed)
        .online_fraction(0.8)
        .topology(TopologySpec::RandomSubset { k: 8 })
        .churn(MarkovChurn::new(0.95, 0.3).expect("valid churn"))
        .loss(0.02)
        .build()
        .expect("valid scenario")
}

fn equivalence_config(delta: bool) -> ProtocolConfig {
    ProtocolConfig::builder(32)
        .fanout_absolute(4)
        .pull_strategy(PullStrategy::Eager)
        .pull_retry(2, 3)
        .staleness_rounds(5)
        .delta_pulls(delta)
        .build()
        .expect("valid config")
}

fn run_equivalence(seed: u64, wire: WireVersion) -> (Option<u32>, ClusterReport) {
    let delta = wire == WireVersion::V2;
    let mut cluster = ClusterBuilder::new(&equivalence_scenario(seed))
        .wire(wire)
        .virtual_time(PaperProtocol::new(equivalence_config(delta)));
    let event = UpdateEvent {
        round: 0,
        key: DataKey::from_name("wire-v2-equivalence"),
        delete: false,
        sequence: 0,
    };
    let update = cluster.initiate(&event).expect("someone online");
    let converged = cluster.run_until_all_online_aware(update, 200);
    (converged, cluster.report(update))
}

#[test]
fn delta_pulls_converge_in_the_same_round_as_full_digest_pulls() {
    for seed in [7u64, 21, 99] {
        let (v1_round, v1_report) = run_equivalence(seed, WireVersion::V1);
        let (v2_round, v2_report) = run_equivalence(seed, WireVersion::V2);
        assert_eq!(
            v1_round, v2_round,
            "seed {seed}: delta pulls must not change the convergence round"
        );
        assert!(v1_round.is_some(), "seed {seed}: scenario must converge");
        assert_eq!(
            v1_report.aware_set, v2_report.aware_set,
            "seed {seed}: the aware replica sets must match exactly"
        );
        // Same logical trajectory: one message per v1 frame, the same
        // messages regrouped into fewer frames under v2.
        assert_eq!(v1_report.messages_sent, v2_report.messages_sent);
        assert!(v2_report.frames_sent <= v1_report.frames_sent);
        for report in [&v1_report, &v2_report] {
            assert_eq!(report.decode_errors, 0);
            assert_eq!(report.version_mismatches, 0);
        }
    }
}
