//! Smoke test mirroring `examples/quickstart.rs` step for step, so the
//! documented quickstart flow can never silently rot: if this test
//! compiles and passes, the example's API calls and its claimed outcomes
//! (push covers the online population, an eager pull recovers a sleeper,
//! a quorum query resolves) all still hold.

use rumor::churn::MarkovChurn;
use rumor::core::{ForwardPolicy, ProtocolConfig, PullStrategy, QueryPolicy};
use rumor::sim::Scenario;
use rumor::types::{DataKey, PeerId};

#[test]
fn quickstart_flow_end_to_end() {
    // Identical parameters to examples/quickstart.rs (same fixed seed, so
    // this run is reproducible bit for bit).
    let population = 1_000;
    let scenario = Scenario::builder(population, 2026)
        .online_fraction(0.2)
        .churn(MarkovChurn::new(0.98, 0.01).expect("valid churn"))
        .build()
        .expect("quickstart scenario builds");

    let config = ProtocolConfig::builder(population)
        .fanout_fraction(0.03)
        .forward(ForwardPolicy::ExponentialDecay { base: 0.9 })
        .pull_strategy(PullStrategy::Eager)
        .pull_fanout(3)
        .build()
        .expect("quickstart config is valid");
    let mut sim = scenario.simulation(config);

    // Push phase: the example prints these numbers; the test pins the
    // claims behind them.
    let key = DataKey::from_name("message-of-the-day");
    let report = sim.propagate(key, "rumors spread fast", 60);
    assert!(
        report.aware_online_fraction > 0.8,
        "push must blanket the online population, got {}",
        report.aware_online_fraction
    );
    assert!(
        report.aware_total_fraction < report.aware_online_fraction,
        "offline peers cannot have been reached by push alone"
    );
    assert!(report.push_messages > 0);
    assert!(report.messages_per_initial_online() > 1.0);
    assert!(report.rounds <= 60);

    // Pull phase: a peer that slept through the push comes online and the
    // eager pull strategy reconciles it within a few rounds.
    let sleeper = (0..population as u32)
        .map(PeerId::new)
        .find(|&p| !sim.online().is_online(p) && sim.peer(p).store().get(key).is_none())
        .expect("someone slept through the push");
    sim.set_online(sleeper, true);
    sim.run_rounds(4);
    let value = sim
        .peer(sleeper)
        .store()
        .get(key)
        .expect("pull recovers the update");
    assert_eq!(value.as_bytes(), b"rumors spread fast");

    // Query: five replicas answer, the latest version wins.
    let answer = sim
        .query(key, 5, QueryPolicy::Latest)
        .expect("replicas hold the key");
    assert_eq!(
        answer.value.expect("not a tombstone").as_bytes(),
        b"rumors spread fast"
    );
}
