//! The declarative `Scenario` pipeline end to end: multi-update workloads
//! with tombstones through `run_workload`, and the seed-parity pin
//! proving the driver redesign changed no trajectories.

use rumor::baselines::GnutellaFlooding;
use rumor::churn::MarkovChurn;
use rumor::core::{ProtocolConfig, PullStrategy};
use rumor::sim::{
    ConvergenceSpec, PaperProtocol, Scenario, SimulationBuilder, UpdateEvent, WorkloadBuilder,
};
use rumor::types::DataKey;

/// A `WorkloadBuilder` schedule (multiple keys, deletes included) runs
/// through `run_workload` with per-update convergence tracking; tombstone
/// events become visible death certificates in the stores.
#[test]
fn workload_with_tombstones_executes_end_to_end() {
    let population = 300;
    let workload = WorkloadBuilder::new(41)
        .keys(&["board/a", "board/b", "board/c"])
        .rate_per_round(0.2)
        .rounds(60)
        .delete_fraction(0.3)
        .generate();
    let deletes: Vec<&UpdateEvent> = workload.iter().filter(|e| e.delete).collect();
    assert!(!deletes.is_empty(), "schedule must include tombstones");

    let scenario = Scenario::builder(population, 41)
        .online_fraction(0.6)
        .churn(MarkovChurn::new(0.99, 0.05).unwrap())
        .workload(workload.clone())
        .build()
        .unwrap();
    let config = ProtocolConfig::builder(population)
        .fanout_fraction(0.05)
        .pull_strategy(PullStrategy::Eager)
        .pull_retry(2, 4)
        .build()
        .unwrap();

    let mut sim = scenario.simulation(config);
    let report = sim.run_workload(scenario.workload(), 60);

    assert_eq!(
        report.updates.len(),
        workload.len(),
        "every event initiated"
    );
    assert_eq!(report.dropped_events, 0);
    assert!(
        report.mean_final_awareness() > 0.9,
        "per-update awareness stays high under mild churn, got {}",
        report.mean_final_awareness()
    );
    assert!(
        report.converged_fraction() > 0.5,
        "most updates reach full online awareness, got {}",
        report.converged_fraction()
    );
    for outcome in &report.updates {
        if let Some(round) = outcome.converged_round {
            assert!(round >= outcome.initiated_round);
            assert!(
                (outcome.final_aware_online - 1.0).abs() < 0.2,
                "a converged update stays widely known: {outcome:?}"
            );
        }
    }

    // Tombstone visibility: for every delete event, some peer that
    // processed it holds a death certificate for the key.
    for event in deletes {
        let outcome = report
            .updates
            .iter()
            .find(|o| o.sequence == event.sequence)
            .expect("tracked");
        assert!(outcome.delete);
        let holder = sim
            .peers()
            .iter()
            .find(|p| p.has_processed(outcome.update))
            .expect("someone processed the delete");
        assert!(
            holder
                .store()
                .versions(event.key)
                .iter()
                .any(|v| v.is_tombstone()),
            "a processed delete must leave a tombstone for {}",
            event.key
        );
    }
}

/// Seed parity, in two halves. First, golden pins: the constants below
/// were recorded by running this exact configuration against the
/// **pre-redesign** `Simulation` (its own round loop, commit 7ce9ffc),
/// so a pass proves the `Driver` rewrite changed no trajectories.
/// Second, the legacy `SimulationBuilder` + `propagate` wrapper and the
/// raw `Scenario` → `Driver` path must agree bit for bit.
#[test]
fn driver_path_matches_simulation_propagate_bit_for_bit() {
    let population = 400;
    let seed = 99;
    let key = DataKey::from_name("parity");
    let config = ProtocolConfig::builder(population)
        .fanout_absolute(5)
        .build()
        .unwrap();

    // Old entry point: the typed wrapper.
    let mut sim = SimulationBuilder::new(population, seed)
        .online_fraction(0.5)
        .churn(MarkovChurn::new(0.95, 0.01).unwrap())
        .protocol(config.clone())
        .build()
        .unwrap();
    let push = sim.propagate(key, "v", 50);

    // Golden trajectory recorded from the pre-redesign implementation.
    assert_eq!(push.rounds, 21);
    assert_eq!(push.push_messages, 657);
    assert_eq!(push.total_messages, 874);
    assert_eq!(push.duplicates, 123);
    assert_eq!(push.initial_online, 200);
    assert_eq!(push.aware_online_fraction, 70.0 / 97.0);
    assert_eq!(push.aware_total_fraction, 0.37);
    let last = push.per_round.last().unwrap();
    assert_eq!((last.round, last.online, last.aware_online), (20, 97, 70));

    // New entry point: scenario + generic driver, same seed.
    let scenario = Scenario::builder(population, seed)
        .online_fraction(0.5)
        .churn(MarkovChurn::new(0.95, 0.01).unwrap())
        .build()
        .unwrap();
    let protocol = PaperProtocol::new(config);
    let mut driver = scenario.drive(&protocol);
    let update = driver
        .initiate(
            &protocol,
            None,
            &UpdateEvent {
                round: 0,
                key,
                delete: false,
                sequence: 0,
            },
        )
        .unwrap();
    let run = driver.track_update(&protocol, update, 50);

    assert_eq!(push.rounds, run.rounds);
    assert_eq!(push.per_round, run.per_round, "identical per-round trace");
    assert_eq!(push.push_messages, run.protocol_messages);
    assert_eq!(push.total_messages, run.total_messages);
    assert_eq!(push.aware_online_fraction, run.aware_online_fraction);
    assert_eq!(push.aware_total_fraction, run.aware_total_fraction);
    assert_eq!(push.initial_online, run.initial_online);
}

/// The convergence criterion is part of the scenario, not a buried
/// constant: loosening the target ends tracking earlier.
#[test]
fn scenario_convergence_spec_controls_tracking() {
    let key = DataKey::from_name("conv");
    let run = |spec: ConvergenceSpec| {
        let scenario = Scenario::builder(300, 5).convergence(spec).build().unwrap();
        let config = ProtocolConfig::builder(300)
            .fanout_absolute(6)
            .build()
            .unwrap();
        let mut sim = scenario.simulation(config);
        sim.propagate(key, "v", 60)
    };
    let strict = run(ConvergenceSpec::default());
    let loose = run(ConvergenceSpec {
        target: 0.4,
        ..ConvergenceSpec::default()
    });
    assert!(
        loose.rounds < strict.rounds,
        "{} !< {}",
        loose.rounds,
        strict.rounds
    );
    assert!(loose.aware_online_fraction < strict.aware_online_fraction);
}

/// One scenario drives a baseline and the paper protocol under identical
/// conditions — the whole point of the redesign.
#[test]
fn one_scenario_drives_paper_and_baseline_alike() {
    let population = 200;
    let scenario = Scenario::builder(population, 13)
        .online_fraction(0.8)
        .build()
        .unwrap();
    let event = UpdateEvent {
        round: 0,
        key: DataKey::from_name("versus"),
        delete: false,
        sequence: 0,
    };

    let paper = PaperProtocol::new(
        ProtocolConfig::builder(population)
            .fanout_absolute(5)
            .pull_strategy(PullStrategy::OnDemand)
            .build()
            .unwrap(),
    );
    let mut ours = scenario.drive(&paper);
    let update = ours.initiate(&paper, None, &event).unwrap();
    let ours_report = ours.track_update(&paper, update, 60);

    let flood = GnutellaFlooding { fanout: 5, ttl: 10 };
    let mut theirs = scenario.drive(&flood);
    let rumor = theirs.initiate(&flood, None, &event).unwrap();
    let flood_report = theirs.track_update(&flood, rumor, 60);

    assert_eq!(
        ours.initial_online(),
        theirs.initial_online(),
        "same environment"
    );
    assert!(ours_report.aware_online_fraction > 0.9);
    assert!(flood_report.aware_online_fraction > 0.9);
    assert!(
        ours_report.protocol_messages < flood_report.total_messages,
        "the partial list + PF decay beat duplicate-avoidance flooding: {} !< {}",
        ours_report.protocol_messages,
        flood_report.total_messages
    );
}
