//! Vendored `serde` facade for the offline build environment.
//!
//! Exposes `Serialize`/`Deserialize` as marker traits alongside no-op
//! derive macros of the same names, so `use serde::{Deserialize,
//! Serialize}` + `#[derive(Serialize, Deserialize)]` compile exactly as
//! they would against the real crate. No serialization framework is
//! provided; `rumor-bench` emits its JSON artefacts through its own
//! `render::json` module. Swapping the real `serde` in later is a
//! manifest-only change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de> {}
