//! Vendored subset of the `bytes` crate for the offline build environment.
//!
//! Provides [`Bytes`] (cheaply clonable, reference-counted immutable
//! bytes), [`BytesMut`] (growable buffer), and the [`Buf`]/[`BufMut`]
//! read/write traits with the big-endian integer accessors the upstream
//! crate defines. Only the surface this workspace uses is implemented;
//! the semantics match upstream so the real crate can be swapped back in.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer (reference counted).
///
/// A `Bytes` is a view (`start..end`) into shared storage, so
/// [`Bytes::slice`] and [`Bytes::slice_ref`] produce sub-views without
/// copying — the upstream crate's zero-copy contract.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    fn from_arc(data: Arc<[u8]>) -> Self {
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }

    /// Creates a `Bytes` from a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from_arc(bytes.into())
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from_arc(data.into())
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-view of `self` for the given range, sharing the
    /// underlying storage (no copy).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted, matching the
    /// upstream crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "range start must not exceed end");
        assert!(end <= len, "range end out of bounds: {end} > {len}");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Returns a `Bytes` view corresponding to `subset`, which must be a
    /// slice borrowed from `self` (e.g. handed out by a parser working
    /// over `&self[..]`). Shares storage with `self` — no copy.
    ///
    /// # Panics
    ///
    /// Panics when `subset` is not contained within `self`, matching the
    /// upstream crate.
    pub fn slice_ref(&self, subset: &[u8]) -> Self {
        if subset.is_empty() {
            return Self::new();
        }
        let base = self.as_slice().as_ptr() as usize;
        let sub = subset.as_ptr() as usize;
        assert!(
            sub >= base && sub + subset.len() <= base + self.len(),
            "subset is not a sub-slice of this Bytes"
        );
        let offset = sub - base;
        self.slice(offset..offset + subset.len())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_arc(v.into())
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer for message encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor; integers are big-endian as upstream.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The readable slice.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Reads a big-endian `u128`.
    fn get_u128(&mut self) -> u128 {
        let mut raw = [0u8; 16];
        raw.copy_from_slice(&self.chunk()[..16]);
        self.advance(16);
        u128::from_be_bytes(raw)
    }

    /// Copies bytes into `dst` and advances past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer; integers are big-endian as upstream.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u128`.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xab);
        buf.put_u16(0x0102);
        buf.put_u32(0x0304_0506);
        buf.put_u64(0x0708_090a_0b0c_0d0e);
        buf.put_u128(7);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xab);
        assert_eq!(cursor.get_u16(), 0x0102);
        assert_eq!(cursor.get_u32(), 0x0304_0506);
        assert_eq!(cursor.get_u64(), 0x0708_090a_0b0c_0d0e);
        assert_eq!(cursor.get_u128(), 7);
        let mut tail = [0u8; 3];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn wire_format_is_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u16(0x0102);
        assert_eq!(&buf[..], &[0x01, 0x02]);
    }

    #[test]
    fn advance_skips_bytes() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        cursor.advance(2);
        assert_eq!(cursor.get_u8(), 3);
        assert_eq!(cursor.remaining(), 1);
    }

    #[test]
    fn bytes_equality_and_clone_share_data() {
        let a = Bytes::from("hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), b"hello");
        assert!(Bytes::new().is_empty());
    }
}
