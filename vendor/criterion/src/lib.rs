//! Vendored criterion-compatible benchmark harness.
//!
//! The build environment has no network access, so this crate provides
//! the subset of the `criterion` API the workspace's benches use:
//! [`Criterion`], [`Criterion::benchmark_group`], `bench_function`,
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BatchSize`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Timing is a simple best-of-N wall-clock measurement printed
//! as `name ... <median> per iter` — enough to compare hot paths
//! locally; swap the real criterion back in for statistics and plots.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortises setup cost (shim: informational only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Larger per-iteration state.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            measured: Vec::new(),
        }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            #[allow(clippy::disallowed_methods)] // the timing harness IS the wall clock
            let start = Instant::now();
            black_box(routine());
            self.measured.push(start.elapsed());
        }
    }

    /// Measures `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            #[allow(clippy::disallowed_methods)] // the timing harness IS the wall clock
            let start = Instant::now();
            black_box(routine(input));
            self.measured.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.measured.is_empty() {
            return Duration::ZERO;
        }
        self.measured.sort_unstable();
        self.measured[self.measured.len() / 2]
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    /// Per-group override, as upstream: it must not leak into
    /// benchmarks run after `finish()`.
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Sets a target measurement time (shim: ignored; sampling is count-based).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, samples, f);
        self
    }

    /// Finishes the group (shim: no-op).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Configures this instance from command-line arguments (shim: returns
    /// self unchanged; cargo's `--bench`/`--test` flags are tolerated).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.sample_size;
        self.run_one(id, samples, f);
        self
    }

    /// Finalizes the run (shim: no-op, for API parity).
    pub fn final_summary(&mut self) {}

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, samples: usize, mut f: F) {
        // `cargo test` invokes bench binaries with `--test`; skip measuring
        // there so test runs stay fast, but still execute one iteration to
        // smoke-test the benchmark body.
        let testing = std::env::args().any(|a| a == "--test");
        let samples = if testing { 1 } else { samples };
        let mut bencher = Bencher::new(samples);
        f(&mut bencher);
        let median = bencher.median();
        println!("bench: {id:<50} {median:>12?} per iter (median of {samples})");
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_samples() {
        let mut b = Bencher::new(5);
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
        assert_eq!(b.measured.len(), 5);
    }

    #[test]
    fn iter_batched_feeds_fresh_inputs() {
        let mut b = Bencher::new(3);
        let mut next = 0;
        let mut seen = Vec::new();
        b.iter_batched(
            || {
                next += 1;
                next
            },
            |x| seen.push(x),
            BatchSize::SmallInput,
        );
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.sample_size(2).bench_function("f", |b| {
            b.iter(|| ran = true);
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn group_sample_size_does_not_leak_past_finish() {
        let mut c = Criterion::default();
        let default_samples = c.sample_size;
        let mut group = c.benchmark_group("g");
        group.sample_size(100);
        group.finish();
        assert_eq!(
            c.sample_size, default_samples,
            "a group's sample_size is per-group, as in upstream criterion"
        );
    }
}
