//! Vendored no-op `Serialize`/`Deserialize` derive macros.
//!
//! The build environment has no network access, so real `serde` cannot be
//! fetched. The workspace's types annotate themselves with
//! `#[derive(Serialize, Deserialize)]` as forward-compatible markers; the
//! only JSON produced today goes through `rumor-bench`'s hand-rolled
//! emitter. These derives therefore expand to nothing — the annotations
//! compile, and swapping the real `serde` back in later is a
//! manifest-only change.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
