//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `rand`'s API it actually uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`choose`, `shuffle`). Algorithms follow the upstream contracts
//! (Lemire-style rejection sampling for integer ranges, 53-bit mantissa
//! floats, Fisher–Yates shuffling) so swapping the real crate back in is
//! a manifest-only change.

#![forbid(unsafe_code)]

/// A source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG that can be reproducibly constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanded via SplitMix64 as the
    /// upstream crate does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod sample_range {
    use super::RngCore;

    /// A type that can be uniformly sampled from a range expression.
    pub trait SampleRange<T> {
        /// Samples one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! uint_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (sample_u64_below(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (sample_u64_below(rng, span + 1) as $t)
                }
            }
        )*};
    }
    uint_range!(u8, u16, u32, u64, usize);

    macro_rules! int_range {
        ($($t:ty => $u:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    self.start.wrapping_add(sample_u64_below(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(sample_u64_below(rng, span + 1) as $t)
                }
            }
        )*};
    }
    int_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = super::unit_f64(rng) as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let unit = super::unit_f64(rng) as $t;
                    lo + unit * (hi - lo)
                }
            }
        )*};
    }
    float_range!(f32, f64);

    /// Uniform draw from `[0, bound)` via widening-multiply rejection.
    fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = rng.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

pub use sample_range::SampleRange;

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::draw(rng) as i128
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a random value of a supported type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns a value uniformly distributed over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "p={p} out of range"
        );
        unit_f64(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            numerator <= denominator && denominator > 0,
            "bad ratio {numerator}/{denominator}"
        );
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related random operations ([`SliceRandom`]).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

pub mod rngs {
    //! Bundled RNGs: a small fast non-crypto generator.

    use super::{RngCore, SeedableRng};

    /// A xoshiro256++ generator — the role `SmallRng` plays upstream.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;
    use crate::rngs::SmallRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = rng();
        let mut b = rng();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = rng();
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn gen_bool_edge_cases() {
        let mut r = rng();
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut r = rng();
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = rng();
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        assert_eq!([7].choose(&mut r), Some(&7));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = rng();
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_u128_uses_full_width() {
        let mut r = rng();
        let x: u128 = r.gen();
        assert!(x >> 64 != 0 || x as u64 != 0);
    }
}
