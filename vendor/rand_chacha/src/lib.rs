//! Vendored ChaCha-based RNG (offline stand-in for the `rand_chacha` crate).
//!
//! Implements the genuine ChaCha8 block function (Bernstein 2008), keyed
//! from a 32-byte seed exactly like the upstream crate's `ChaCha8Rng`, so
//! streams are high quality and platform-independent. Word-level output
//! order matches a simple sequential reading of the keystream; it is not
//! guaranteed bit-identical to upstream `rand_chacha`, which is fine
//! because every consumer in this workspace seeds its own streams.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut rng = Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stream_crosses_block_boundaries() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..40).map(|_| r.next_u32()).collect();
        let mut again = ChaCha8Rng::seed_from_u64(3);
        let second: Vec<u32> = (0..40).map(|_| again.next_u32()).collect();
        assert_eq!(first, second);
        // 40 > 16 words, so at least two blocks were generated.
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn mean_of_unit_uniform_is_centered() {
        let mut r = ChaCha8Rng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
