//! Vendored property-testing harness (offline `proptest` stand-in).
//!
//! Supports the subset of the `proptest` API this workspace uses: the
//! [`proptest!`] macro over `arg in strategy` bindings, range strategies
//! for the primitive numeric types, [`any`], [`sample::select`] and
//! [`collection::vec`], plus [`prop_assert!`]/[`prop_assert_eq!`].
//!
//! Each `#[test]` runs a fixed number of cases; inputs are drawn from a
//! ChaCha8 stream seeded from the test's name and the case index, so
//! every run of `cargo test` explores the identical, reproducible input
//! set (no flakiness, trivial failure reproduction). Shrinking is not
//! implemented — the failing case's seed is its reproduction recipe.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// Number of cases each property runs.
pub const CASES: u64 = 64;

/// Builds the deterministic RNG for one test case.
pub fn test_rng(test_name: &str, case: u64) -> ChaCha8Rng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in test_name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Values constructible "from anywhere" by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut ChaCha8Rng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut ChaCha8Rng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut ChaCha8Rng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut ChaCha8Rng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut ChaCha8Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing any value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut ChaCha8Rng) -> T {
        T::arbitrary(rng)
    }
}

pub mod sample {
    //! Strategies that pick from explicit value sets.

    use super::{ChaCha8Rng, Strategy};
    use rand::seq::SliceRandom;

    /// Strategy returned by [`select`].
    pub struct Select<T>(Vec<T>);

    /// Picks uniformly from the given non-empty vector.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut ChaCha8Rng) -> T {
            self.0.choose(rng).expect("non-empty options").clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{ChaCha8Rng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Asserts a property holds (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two values differ (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares deterministic property tests, mirroring `proptest::proptest!`.
///
/// Each declared function becomes a `#[test]` that runs [`CASES`] cases
/// with inputs drawn from a per-test, per-case seeded ChaCha8 stream.
#[macro_export]
macro_rules! proptest {
    ($( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                for __case in 0..$crate::CASES {
                    let mut __rng = $crate::test_rng(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn test_rng_is_deterministic_per_name_and_case() {
        use rand::RngCore;
        let mut a = crate::test_rng("t", 3);
        let mut b = crate::test_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn select_and_vec_strategies_sample_in_bounds() {
        let mut rng = crate::test_rng("bounds", 0);
        let sel = crate::sample::select(vec![10, 20, 30]);
        for _ in 0..100 {
            assert!([10, 20, 30].contains(&sel.sample(&mut rng)));
        }
        let vs = crate::collection::vec(0u32..5, 2..4);
        for _ in 0..100 {
            let v = vs.sample(&mut rng);
            assert!((2..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #[test]
        fn macro_generates_cases(x in 0u64..100, y in 0usize..10) {
            prop_assert!(x < 100);
            prop_assert!(y < 10);
            prop_assert_eq!(x.min(99), x);
        }

        #[test]
        fn any_covers_wide_values(bits in any::<u128>()) {
            prop_assert_eq!(bits, bits);
        }
    }
}
