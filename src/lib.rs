//! `rumor` — updates in highly unreliable, replicated peer-to-peer
//! systems.
//!
//! A production-quality Rust reproduction of Datta, Hauswirth & Aberer,
//! *Updates in Highly Unreliable, Replicated Peer-to-Peer Systems*
//! (ICDCS 2003): a hybrid **push/pull rumor-spreading** update protocol
//! for replicated data where peers are offline most of the time, plus the
//! paper's full analytical model, a discrete-event simulator, the
//! baseline protocols it compares against, and a P-Grid overlay
//! substrate.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! namespace so applications can depend on a single crate.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`core`] | `rumor-core` | the protocol: replica state machine, versions, partial lists, `PF(t)` policies, stores |
//! | [`analysis`] | `rumor-analysis` | the §4 analytical model (figures & Table 2) |
//! | [`sim`] | `rumor-sim` | the `Scenario`/`Driver`/`Protocol` experiment harness + discrete simulator over the real protocol |
//! | [`churn`] | `rumor-churn` | availability models (σ/p_on chains, on/off dwell, traces, catastrophes) |
//! | [`net`] | `rumor-net` | sync round engine, async event engine, loss/partitions, topologies |
//! | [`wire`] | `rumor-wire` | versioned, length-prefixed binary wire codec (frames, strict decode) |
//! | [`cluster`] | `rumor-cluster` | live runtime: sans-IO nodes on OS threads, a sharded worker pool, or virtual time, exchanging encoded frames |
//! | [`fuzz`] | `rumor-fuzz` | seeded chaos fuzzer: random scenarios + Byzantine peers vs the convergence oracle, replayable records |
//! | [`obs`] | `rumor-obs` | deterministic structured tracing: `Tracer` sinks, canonical trace merge, dissemination timelines, per-node registry |
//! | [`baselines`] | `rumor-baselines` | Gnutella, pure flooding, Haas GOSSIP1, Demers anti-entropy & rumor mongering |
//! | [`pgrid`] | `rumor-pgrid` | the P-Grid trie overlay hosting the protocol |
//! | [`metrics`] | `rumor-metrics` | counters, series, histograms, tables |
//! | [`types`] | `rumor-types` | shared ids, rounds, seeds |
//!
//! # Quickstart
//!
//! A [`sim::Scenario`] declares the environment; any protocol — the
//! paper peer or a baseline — mounts into it through the one shared
//! [`sim::Driver`]:
//!
//! ```
//! use rumor::core::ProtocolConfig;
//! use rumor::sim::Scenario;
//! use rumor::types::DataKey;
//!
//! // A replica partition of 1000 peers, 30% online, fanout 0.02.
//! let scenario = Scenario::builder(1000, 7).online_fraction(0.3).build()?;
//! let config = ProtocolConfig::builder(1000).fanout_fraction(0.02).build()?;
//! let mut sim = scenario.simulation(config);
//! let report = sim.propagate(DataKey::from_name("motd"), "hello p2p", 60);
//! assert!(report.aware_online_fraction > 0.95);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rumor_analysis as analysis;
pub use rumor_baselines as baselines;
pub use rumor_churn as churn;
pub use rumor_cluster as cluster;
pub use rumor_core as core;
pub use rumor_fuzz as fuzz;
pub use rumor_metrics as metrics;
pub use rumor_net as net;
pub use rumor_obs as obs;
pub use rumor_pgrid as pgrid;
pub use rumor_sim as sim;
pub use rumor_types as types;
pub use rumor_wire as wire;
